"""Core discrete-event simulation engine.

The engine follows the classic event-list design: a binary heap of
``(time, priority, sequence, event)`` tuples, popped in order. Model
code is written as generator coroutines wrapped in :class:`Process`;
each ``yield``ed :class:`Event` suspends the process until the event is
processed, at which point the event's value is sent back into the
generator (or its exception thrown into it).

Only simulation-domain concepts live here; bandwidth sharing and
resources are layered on top in sibling modules.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for high-urgency events (process interrupts).
URGENT = 0


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An occurrence at a point in simulated time.

    Events move through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled on the event list with a value or
    an exception) and *processed* (callbacks have run). Processes wait
    on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value/exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event was triggered successfully."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value is not available until the event triggers")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        If no process ever waits on the failed event and it is not
        :meth:`defused <defuse>`, the exception propagates out of
        :meth:`Simulator.run` — silent failures are bugs.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exc!r}")
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(self, NORMAL, 0.0)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    # -- callback plumbing -------------------------------------------------
    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            cb(self)
        else:
            self.callbacks.append(cb)

    def _remove_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and cb in self.callbacks:
            self.callbacks.remove(cb)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for cb in callbacks or ():
            cb(self)
        if self._exc is not None and not callbacks and not self._defused:
            raise self._exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    A pending timeout can be :meth:`cancel`\\ led; the heap entry stays
    (binary heaps cannot delete arbitrary entries) but is discarded
    without running callbacks when popped. This is what lets the flow
    scheduler keep exactly one live completion timer instead of
    accumulating thousands of version-dead entries.
    """

    __slots__ = ("delay", "_cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._cancelled = False
        self._triggered = True
        self._value = value
        sim._schedule(self, NORMAL, delay)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Deactivate the timeout: callbacks will never run.

        Cancelling an already-processed timeout is a no-op.
        """
        self._cancelled = True

    def _process(self) -> None:
        if self._cancelled:
            self.callbacks = None
            self._processed = True
            return
        super()._process()


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._triggered = True
        sim._schedule(self, URGENT, 0.0)


class _InterruptEvent(Event):
    """Internal event that throws :class:`Interrupt` into a process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process", cause: Any) -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._triggered = True
        self._exc = Interrupt(cause)
        self._defused = True
        sim._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running generator coroutine; also an event that triggers when
    the generator returns (value = return value) or raises.
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str | None = None) -> None:
        if not hasattr(gen, "throw"):
            raise SimulationError(f"{gen!r} is not a generator")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        #: The event this process is currently waiting on, if any.
        self._target: Event | None = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting on an event detaches it from that event
        first (the event may still trigger, but will not resume this
        process for that wait).
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        _InterruptEvent(self.sim, self, cause)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # Process already ended (e.g. interrupt raced with completion).
            return
        # Detach from the current target; an interrupt may arrive while we
        # are still registered on another event.
        if self._target is not None and self._target is not event:
            self._target._remove_callback(self._resume)
            if not self._target.callbacks:
                # Abandoned with no other listeners: a later failure of
                # this event is expected fallout (e.g. flows cancelled
                # during cleanup), not an unhandled error.
                self._target._defused = True
        self._target = None

        self.sim._active_process = self
        try:
            if event._exc is not None:
                event._defused = True
                next_ev = self.gen.throw(event._exc)
            else:
                next_ev = self.gen.send(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self._triggered = True
            self._value = stop.value
            self.sim._schedule(self, NORMAL, 0.0)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._triggered = True
            self._exc = exc
            self.sim._schedule(self, NORMAL, 0.0)
            return
        self.sim._active_process = None

        if not isinstance(next_ev, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_ev!r}"
            )
        if next_ev.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another simulator")
        self._target = next_ev
        next_ev._add_callback(self._resume)


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("all condition events must share one simulator")
        self._remaining = len(self.events)
        if not self.events:
            self._on_empty()
            return
        for ev in self.events:
            ev._add_callback(self._check)

    def _on_empty(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every child event has triggered; value is the list
    of child values in their original order. Fails fast if any child
    fails.

    ``AllOf([])`` is vacuously satisfied and succeeds immediately with
    an empty value list — "wait for all of nothing" is a completed wait.
    """

    __slots__ = ()

    def _on_empty(self) -> None:
        self.succeed([])

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(Condition):
    """Triggers when the first child event triggers; value is that
    child's value. Fails if the first child to trigger fails.

    ``AnyOf([])`` raises :class:`SimulationError`: none of zero events
    can ever trigger, and succeeding immediately (the old behaviour)
    silently masked callers that built an empty child list by mistake.
    """

    __slots__ = ()

    def _on_empty(self) -> None:
        raise SimulationError(
            "AnyOf requires at least one event: an empty AnyOf can never trigger"
        )

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
            return
        self.succeed(event._value)


class Simulator:
    """Owns simulated time and the pending-event heap."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any], name: str | None = None) -> Process:
        """Start running ``gen`` as a process at the current time."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _, _, event = heapq.heappop(self._heap)
        self._now = when
        event._process()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, ``until`` time passes, or an
        ``until`` event triggers (returning its value).
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(f"until={stop_time} is in the past (now={self._now})")

        while self._heap:
            if stop_event is not None and stop_event._processed:
                return stop_event.value
            if self._heap[0][0] > stop_time:
                self._now = stop_time
                return None
            self.step()
        if stop_event is not None:
            if stop_event._processed:
                return stop_event.value
            raise SimulationError("simulation ran out of events before `until` event triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
