"""Columnar data plane: cluster-wide node state in numpy arrays.

At 10k nodes the per-object representation of node state (one
``NodeManager`` attribute write per heartbeat, one python attribute
read per liveness/scheduling probe) is the hot loop. This module holds
that state as *columns* — one preallocated numpy array per field,
one slot per node — so the control-plane daemons become single
vectorized passes: ``hb[mask] = now`` stamps every heartbeat at an
instant, ``np.flatnonzero(now - hb >= timeout)`` finds every overdue
node, and the scheduler's least-loaded scan is an array max.

Two cooperating pieces:

- :class:`ColumnStore` — a generic slotted struct-of-arrays with
  amortized-doubling growth and LIFO free-slot reuse. Users allocate a
  slot per entity and either read/write columns directly (vectorized
  passes) or through a :class:`Handle` (attribute-style scalar access,
  used by tests and cold paths).
- :class:`LivenessColumns` — the cluster's ``alive``/``network_up``
  bool arrays, dense by ``node_id``. :class:`~repro.cluster.node.Node`
  dual-writes its liveness flips into these (writes are rare fault
  events), so batched ticks can test reachability without touching
  node objects.

``REPRO_DATA_PLANE=reference`` selects the pre-columnar scalar
representation (per-object attributes, one pure periodic per node
manager) — the equivalence oracle, mirroring ``REPRO_KERNEL`` and
``REPRO_SCHEDULER``. Both planes are byte-identical by construction:
the same values are written at the same instants in the same relative
order, so seeded trace digests do not move (see DESIGN.md §11 for the
ordering argument; ``python -m repro verify`` enforces it).
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.sim.core import SimulationError

__all__ = [
    "AttemptColumns",
    "ColumnStore",
    "FlowColumns",
    "Handle",
    "LivenessColumns",
    "attempt_progress",
    "columnar_enabled",
    "data_plane_mode",
]


def data_plane_mode() -> str:
    """The node-state representation selected by ``REPRO_DATA_PLANE``:
    ``columnar`` (default) or ``reference`` (per-object scalar state,
    the pre-columnar implementation kept as an equivalence oracle)."""
    choice = os.environ.get("REPRO_DATA_PLANE", "").strip().lower()
    if choice in ("", "columnar"):
        return "columnar"
    if choice in ("reference", "scalar"):
        return "reference"
    raise SimulationError(f"unknown REPRO_DATA_PLANE {choice!r}")


def columnar_enabled() -> bool:
    return data_plane_mode() == "columnar"


class ColumnStore:
    """Slotted struct-of-arrays storage.

    ``schema`` maps field name -> numpy dtype string. Every allocated
    slot owns one cell of every column. Capacity grows by amortized
    doubling; freed slots are reused LIFO, so a free immediately
    followed by an alloc returns the *same* slot — which is what keeps
    slot order aligned with registration order across node
    re-registrations (see ``yarn.rm``).

    Vectorized readers must slice columns to ``[:store.size]`` (the
    high-water mark) and mask with :attr:`used`: cells past the mark
    are uninitialised, cells of freed slots are stale until realloc.
    ``alloc`` zero-fills every field it is not given a value for, so a
    reused slot never leaks its previous occupant's state.
    """

    __slots__ = ("_schema", "_cols", "used", "size", "_free")

    def __init__(self, schema: dict[str, str], capacity: int = 8) -> None:
        if not schema:
            raise SimulationError("ColumnStore needs at least one field")
        self._schema = dict(schema)
        cap = max(int(capacity), 1)
        self._cols = {name: np.zeros(cap, dtype=dt) for name, dt in self._schema.items()}
        #: Per-slot liveness mask (True between alloc and free).
        self.used = np.zeros(cap, dtype=bool)
        #: High-water mark: slots >= size have never been allocated.
        self.size = 0
        self._free: list[int] = []

    def __len__(self) -> int:
        """Number of live (allocated, unfreed) slots."""
        return self.size - len(self._free)

    @property
    def capacity(self) -> int:
        return len(self.used)

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(self._schema)

    def col(self, name: str) -> np.ndarray:
        """The full backing array for ``name``; slice to ``[:size]``."""
        return self._cols[name]

    def alloc(self, **values: Any) -> int:
        """Claim a slot, zero-fill it, apply ``values``; return it."""
        unknown = [k for k in values if k not in self._cols]
        if unknown:
            raise SimulationError(f"unknown column(s): {', '.join(unknown)}")
        if self._free:
            slot = self._free.pop()
        else:
            slot = self.size
            if slot >= self.capacity:
                self._grow()
            self.size += 1
        for name, arr in self._cols.items():
            arr[slot] = values[name] if name in values else 0
        self.used[slot] = True
        return slot

    def alloc_many(self, count: int, **values: Any) -> np.ndarray:
        """Claim ``count`` slots in one vectorized pass; returns them.

        Each value may be a scalar (broadcast) or an array of length
        ``count``. Free slots are reused (LIFO) before fresh ones, and
        every field not given a value is zero-filled, exactly as
        :meth:`alloc` does one at a time. This is the construction-time
        bulk path: ``REPRO_PROFILE`` at 4096 nodes showed the per-NM
        ``alloc`` loop as the hottest remaining loop once the periodic
        ticks were vectorized.
        """
        if count < 0:
            raise SimulationError(f"alloc_many of {count} slots")
        unknown = [k for k in values if k not in self._cols]
        if unknown:
            raise SimulationError(f"unknown column(s): {', '.join(unknown)}")
        slots = np.empty(count, dtype="i8")
        reused = min(len(self._free), count)
        for i in range(reused):
            slots[i] = self._free.pop()
        fresh = count - reused
        if fresh:
            while self.size + fresh > self.capacity:
                self._grow()
            slots[reused:] = np.arange(self.size, self.size + fresh)
            self.size += fresh
        for name, arr in self._cols.items():
            arr[slots] = values.get(name, 0)
        self.used[slots] = True
        return slots

    def free(self, slot: int) -> None:
        """Release a slot for LIFO reuse. Stale column values remain
        readable until the slot is reallocated — holders of dead
        handles must not be trusted past this point."""
        if not (0 <= slot < self.size) or not self.used[slot]:
            raise SimulationError(f"free of unallocated slot {slot}")
        self.used[slot] = False
        self._free.append(slot)

    def _grow(self) -> None:
        new_cap = max(self.capacity * 2, 8)
        for name, arr in self._cols.items():
            grown = np.zeros(new_cap, dtype=arr.dtype)
            grown[: len(arr)] = arr
            self._cols[name] = grown
        grown_used = np.zeros(new_cap, dtype=bool)
        grown_used[: len(self.used)] = self.used
        self.used = grown_used

    # -- scalar access ----------------------------------------------------
    def get(self, slot: int, name: str) -> Any:
        """One cell as a plain python scalar (``.item()``), so values
        that flow onward into traces/JSON keep native types."""
        return self._cols[name][slot].item()

    def set(self, slot: int, name: str, value: Any) -> None:
        self._cols[name][slot] = value

    def handle(self, slot: int) -> "Handle":
        return Handle(self, slot)


class Handle:
    """Attribute-style view of one :class:`ColumnStore` slot.

    ``h.field`` reads and ``h.field = v`` writes the underlying cell;
    equivalent to instance attributes on a per-entity object, which is
    exactly the property the equivalence tests pin.
    """

    __slots__ = ("_store", "_slot")

    def __init__(self, store: ColumnStore, slot: int) -> None:
        object.__setattr__(self, "_store", store)
        object.__setattr__(self, "_slot", slot)

    @property
    def slot(self) -> int:
        return self._slot

    def __getattr__(self, name: str) -> Any:
        try:
            return self._store.get(self._slot, name)
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        try:
            self._store.set(self._slot, name, value)
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cells = {name: self._store.get(self._slot, name) for name in self._store.fields}
        return f"<Handle slot={self._slot} {cells}>"


class LivenessColumns:
    """Dense per-``node_id`` liveness arrays for one cluster.

    Nodes dual-write their ``alive``/``network_up`` flips here (rare:
    fault injections and recoveries), so hot batched ticks read
    reachability as one indexed array load instead of two python
    property calls per node. ``reachable`` is maintained eagerly as
    ``alive & network_up`` — the only form the hot paths consume.
    """

    __slots__ = ("alive", "net", "reachable")

    def __init__(self, num_nodes: int) -> None:
        self.alive = np.ones(num_nodes, dtype=bool)
        self.net = np.ones(num_nodes, dtype=bool)
        self.reachable = np.ones(num_nodes, dtype=bool)

    def update(self, node_id: int, alive: bool, network_up: bool) -> None:
        self.alive[node_id] = alive
        self.net[node_id] = network_up
        self.reachable[node_id] = alive and network_up


class FlowColumns(ColumnStore):
    """Per-flow columns for the columnar flow scheduler.

    One slot per *admitted* flow (size-0 flows complete before
    admission and never get a slot). The scheduler treats these cells
    as the authoritative ``remaining``/``rate`` while the flow is
    attached; the owning :class:`~repro.sim.flows.Flow` instance
    attributes are written back at detach so waiters and tests see the
    familiar object state after completion/cancellation.

    Besides the scalar schema there is a synced 2D ``rids`` matrix
    (slot x max-degree) holding the dense resource ids each flow is
    routed through, padded with ``-1`` — the edge list the vectorized
    progressive filling consumes without touching flow objects.
    """

    SCHEMA = {
        "remaining": "f8",  # bytes left at the last rate change
        "rate": "f8",       # current max-min allocated rate (B/s)
        "size": "f8",       # total bytes (constant per flow)
        "fid": "i8",        # admission-ordered flow id (sort key)
        "comp": "i8",       # union-find component label (a root rid)
        "deg": "i4",        # number of valid entries in rids[slot]
    }

    __slots__ = ("rids",)

    def __init__(self, capacity: int = 64, max_degree: int = 6) -> None:
        super().__init__(dict(self.SCHEMA), capacity)
        self.rids = np.full((self.capacity, max(int(max_degree), 1)), -1, dtype="i8")

    def _grow(self) -> None:
        super()._grow()
        grown = np.full((self.capacity, self.rids.shape[1]), -1, dtype="i8")
        grown[: len(self.rids)] = self.rids
        self.rids = grown

    def ensure_degree(self, degree: int) -> None:
        """Widen the ``rids`` matrix to hold ``degree`` resources."""
        if degree > self.rids.shape[1]:
            width = max(degree, self.rids.shape[1] * 2)
            grown = np.full((len(self.rids), width), -1, dtype="i8")
            grown[:, : self.rids.shape[1]] = self.rids
            self.rids = grown


class AttemptColumns(ColumnStore):
    """Per-task-attempt columns, dual-written by ``TaskAttempt``.

    Unlike :class:`FlowColumns` these are a pure *read mirror*: the
    python attempt objects stay the source of truth (attempt state
    mutates only at discrete control-plane points), and every mutation
    site writes the matching cells. Vectorized consumers — the
    progress sampler's gauge block, ``Speculator._scan``, per-tick
    ``task_progress`` emission — read whole-population snapshots
    instead of calling ``attempt.progress`` per object.

    Progress is stored *decomposed*, not as a number: a running
    attempt's progress is ``prog_base + prog_span * flow_progress``
    (map read/write phases, reduce shuffle/merge), or the dedicated
    reduce-stage form when ``reduce_live`` is set (see
    :func:`attempt_progress`). The decomposition is what lets one
    vectorized pass reproduce the scalar property bit-for-bit without
    any per-tick per-attempt writes.

    ``flow_fid`` encodes the flow link: ``-1`` no flow, ``>= 0`` the
    admitted flow's fid (cell-validated against ``FlowColumns``),
    ``-2`` a flow that must be read through the python object (the
    ``flow_refs`` side list) because it has no column cell.
    """

    SCHEMA = {
        "seq": "i8",            # global allocation sequence (unique, ordered)
        "task_type": "i1",      # 0 = map, 1 = reduce
        "task_id": "i8",
        "attempt_index": "i4",
        "owner": "i4",          # am_attempt of the AM that owns this attempt
        "running": "?",
        "state": "i1",          # AttemptState ordinal
        "start_time": "f8",
        "prog_base": "f8",
        "prog_span": "f8",
        "flow_slot": "i8",      # FlowColumns slot of the live flow, or -1
        "flow_fid": "i8",       # fid of that flow (validates the slot), -1/-2
        "reduce_live": "?",     # in the final reduce stage (form B progress)
        "fcm": "?",             # FCM recovery mode: progress = resume+(1-resume)*live
        "resume": "f8",         # ALM resume fraction for the reduce stage
        "cpu_start": "f8",
        "cpu_secs": "f8",
    }

    __slots__ = ("flow_refs", "_next_seq")

    def __init__(self, capacity: int = 64) -> None:
        super().__init__(dict(self.SCHEMA), capacity)
        #: slot -> live Flow object (fallback for fid == -2 / stale cells).
        self.flow_refs: list[Any] = [None] * self.capacity
        self._next_seq = 0

    def _grow(self) -> None:
        super()._grow()
        self.flow_refs.extend([None] * (self.capacity - len(self.flow_refs)))

    def alloc_attempt(self, **values: Any) -> int:
        values["seq"] = self._next_seq
        self._next_seq += 1
        slot = self.alloc(**values)
        self.flow_refs[slot] = None
        return slot

    def free(self, slot: int) -> None:
        self.flow_refs[slot] = None
        super().free(slot)


def attempt_progress(store: AttemptColumns, slots: np.ndarray, fcols,
                     now: float, last_update: float) -> np.ndarray:
    """Vectorized ``TaskAttempt.progress`` for running-attempt ``slots``.

    Bit-identical to the scalar property: flow progress is recovered
    from the flow columns with the exact `remaining - rate*dt` advance
    the ``Flow.transferred`` property applies, then combined with the
    stored base/span decomposition. Rows whose flow link is not a valid
    column cell (scalar flow scheduler, or a flow already detached by
    completion/cancellation) fall back to the python flow object, which
    is always exact by construction.
    """
    n = len(slots)
    base = store.col("prog_base")[slots]
    span = store.col("prog_span")[slots]
    ffid = store.col("flow_fid")[slots]
    flowprog = np.zeros(n)
    have = ffid != -1
    if have.any():
        fslot = store.col("flow_slot")[slots]
        if fcols is not None and fcols.size:
            safe = np.where((fslot >= 0) & (fslot < fcols.size), fslot, 0)
            valid = (have & (ffid >= 0) & (fslot >= 0) & (fslot < fcols.size)
                     & fcols.used[safe] & (fcols.col("fid")[safe] == ffid))
        else:
            valid = np.zeros(n, dtype=bool)
        if valid.any():
            vs = fslot[valid]
            sz = fcols.col("size")[vs]
            rem = fcols.col("remaining")[vs]
            dt = now - last_update
            if dt > 0:
                frate = fcols.col("rate")[vs]
                rem = np.where(frate > 0, np.maximum(rem - frate * dt, 0.0), rem)
            prog = np.ones(len(vs))
            nz = sz != 0.0
            prog[nz] = (sz[nz] - rem[nz]) / sz[nz]
            flowprog[valid] = prog
        stale = have & ~valid
        if stale.any():
            refs = store.flow_refs
            for i in np.flatnonzero(stale):
                ref = refs[int(slots[i])]
                if ref is not None:
                    flowprog[i] = ref.progress
    out = base + span * flowprog
    rl = store.col("reduce_live")[slots]
    if rl.any():
        fcm = store.col("fcm")[slots]
        cpu_secs = store.col("cpu_secs")[slots]
        has_cpu = rl & (cpu_secs > 0.0)
        cpu_part = np.zeros(n)
        if has_cpu.any():
            cpu_start = store.col("cpu_start")[slots]
            cpu_part[has_cpu] = np.minimum(
                1.0, (now - cpu_start[has_cpu]) / cpu_secs[has_cpu])
        # FCM's scalar progress ignores flows: live is the CPU part
        # alone (its pre-CPU fallback ``_fcm_frac`` is 0.0 at every
        # observable instant).
        has_flow = rl & have & ~fcm
        live = np.where(has_cpu & has_flow, np.minimum(flowprog, cpu_part),
                        np.where(has_flow, flowprog,
                                 np.where(has_cpu, cpu_part, 0.0)))
        resume = store.col("resume")[slots]
        rpf = resume + (1.0 - resume) * live
        out = np.where(rl & fcm, rpf, np.where(rl, 2.0 / 3.0 + rpf / 3.0, out))
    return out
