"""Deterministic exponential backoff with hashed jitter.

Retry schedules in the simulator must be *reproducible*: the same
(seed, key) pair must yield the same intervals on every run, on every
platform, regardless of how many other RNG draws happened elsewhere.
So jitter here is not drawn from a shared RNG stream — it is derived
by hashing ``(key, attempt)`` with SHA-256, giving a uniform value in
``[0, 1)`` that is a pure function of its inputs.

Used by the AM->RM allocate retry path and the RM grant-redelivery
loop (:mod:`repro.sim.rpc`); generic enough for any retrying client.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.sim.core import SimulationError

__all__ = ["BackoffPolicy", "retry_intervals"]


def _hashed_unit(key: str, attempt: int) -> float:
    """Deterministic uniform in [0, 1) from (key, attempt)."""
    digest = hashlib.sha256(f"{key}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    The base interval for retry ``attempt`` (0-based) is
    ``base * multiplier**attempt`` capped at ``max_interval``; jitter
    then scales it by ``1 + jitter * (2u - 1)`` where ``u`` is the
    hashed-uniform value for ``(key, attempt)``. The result is clamped
    to ``max_interval`` *after* jitter, so no interval ever exceeds the
    cap.
    """

    base: float = 1.0
    multiplier: float = 2.0
    max_interval: float = 30.0
    max_retries: int = 8
    #: Relative jitter amplitude in [0, 1): 0.2 means +-20%.
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.base <= 0 or self.multiplier < 1.0:
            raise SimulationError("backoff base must be > 0 and multiplier >= 1")
        if self.max_interval < self.base:
            raise SimulationError("max_interval must be >= base")
        if self.max_retries < 0:
            raise SimulationError("max_retries must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")

    def interval(self, attempt: int, key: str = "") -> float:
        """Delay before retry ``attempt`` (0-based), jittered + capped."""
        if attempt < 0:
            raise SimulationError("attempt must be >= 0")
        raw = min(self.base * self.multiplier**attempt, self.max_interval)
        if self.jitter:
            u = _hashed_unit(key, attempt)
            raw *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return min(raw, self.max_interval)

    def schedule(self, key: str = "") -> list[float]:
        """The full retry schedule: one interval per allowed retry."""
        return [self.interval(i, key) for i in range(self.max_retries)]


def retry_intervals(policy: BackoffPolicy, key: str, cancel=None):
    """Generator of retry intervals honoring a cancel event.

    Yields the delay to sleep before each retry; stops after
    ``policy.max_retries`` intervals or as soon as ``cancel`` (an
    :class:`~repro.sim.core.Event` or anything with ``triggered``) has
    fired — a cancelled client never sees another interval.
    """
    for attempt in range(policy.max_retries):
        if cancel is not None and getattr(cancel, "triggered", False):
            return
        yield policy.interval(attempt, key)
