"""Fallible RPC channel: seeded, deterministic message loss and delay.

Every control-plane message in the simulator (NM heartbeats, AM->RM
allocate requests, RM->AM grant deliveries, container releases) can be
routed through an :class:`RpcChannel`. The default channel is
*reliable* and a strict no-op: zero RNG draws, zero extra events, so
trace digests of RPC-fault-free scenarios are byte-identical to a
build without this module.

When configured with loss/delay probabilities the channel becomes
*fallible*. Outcomes are not drawn from a shared RNG stream — they are
derived by hashing ``(seed, label)`` with SHA-256 (the same trick as
:mod:`repro.sim.backoff`), so a message's fate is a pure function of
its identity: independent of event ordering, identical across the
scalar and columnar data planes, and bit-reproducible across reruns.

Heartbeats are drop-only (a delayed heartbeat is indistinguishable
from a dropped one at the liveness scan's granularity); point-to-point
messages (allocate/grant/release) can be dropped or delayed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.sim.core import SimulationError

__all__ = ["RpcChannel", "RpcOutcome"]


def _unit(seed: int, label: str) -> float:
    """Deterministic uniform in [0, 1) from (seed, label)."""
    digest = hashlib.sha256(f"{seed}|{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RpcOutcome:
    """Fate of one message: delivered (possibly late) or dropped."""

    dropped: bool
    delay: float = 0.0


class RpcChannel:
    """Seeded drop/delay model for control-plane messages."""

    def __init__(self, drop_prob: float = 0.0, delay_prob: float = 0.0,
                 max_delay: float = 2.0, seed: int = 0) -> None:
        if not (0.0 <= drop_prob < 1.0) or not (0.0 <= delay_prob < 1.0):
            raise SimulationError("rpc probabilities must be in [0, 1)")
        if drop_prob + delay_prob >= 1.0:
            raise SimulationError("rpc drop_prob + delay_prob must be < 1")
        if max_delay < 0:
            raise SimulationError("rpc max_delay must be >= 0")
        self.drop_prob = drop_prob
        self.delay_prob = delay_prob
        self.max_delay = max_delay
        self.seed = seed
        #: Reliable channels are pass-through: callers skip the
        #: fallible paths entirely, keeping default digests unchanged.
        self.fallible = drop_prob > 0.0 or delay_prob > 0.0
        self.stats: dict[str, int] = {
            "heartbeats_dropped": 0, "dropped": 0, "delayed": 0, "sent": 0,
        }
        self._seq: dict[str, int] = {}

    # -- heartbeats (drop-only) -------------------------------------------
    def heartbeat_dropped(self, node_id: int, now: float) -> bool:
        """Whether this node's heartbeat at time ``now`` is lost.

        Keyed on (node_id, time) rather than a stream position, so the
        scalar per-NM periodics and the columnar batched stamp agree
        bit-for-bit.
        """
        if not self.fallible or self.drop_prob <= 0.0:
            return False
        if _unit(self.seed, f"hb|{node_id}|{now!r}") < self.drop_prob:
            self.stats["heartbeats_dropped"] += 1
            return True
        return False

    # -- point-to-point messages ------------------------------------------
    def send(self, label: str) -> RpcOutcome:
        """Fate of the next message on the ``label`` lane.

        Each lane (e.g. ``alloc|am0-r3`` or ``grant|c17``) keeps its own
        send counter, so a retransmit on the same lane gets a fresh,
        independent — yet fully deterministic — outcome.
        """
        n = self._seq.get(label, 0)
        self._seq[label] = n + 1
        self.stats["sent"] += 1
        if not self.fallible:
            return RpcOutcome(dropped=False)
        u = _unit(self.seed, f"msg|{label}|{n}")
        if u < self.drop_prob:
            self.stats["dropped"] += 1
            return RpcOutcome(dropped=True)
        if u < self.drop_prob + self.delay_prob:
            self.stats["delayed"] += 1
            frac = _unit(self.seed, f"delay|{label}|{n}")
            return RpcOutcome(dropped=False, delay=frac * self.max_delay)
        return RpcOutcome(dropped=False)
