"""Simulation-wide invariant checkers.

A fault schedule that merely slows a job down is business as usual; one
that wedges the event loop, leaks containers, loses reduce output bytes
or corrupts NameNode metadata is a simulator bug. These checkers encode
what must hold after *every* run — fault-free or chaotic — and are the
oracle of the chaos campaign (:mod:`repro.faults.chaos`).

Each checker is ``fn(rt, result) -> list[str]`` where ``rt`` is the
:class:`~repro.mapreduce.job.MapReduceRuntime` *after* ``rt.run()``
returned ``result``. An empty list means the invariant holds.

Use :func:`check_invariants` standalone, or set ``REPRO_INVARIANTS=1``
to make the experiment drivers record (and the trial runner reject)
violations on every trial.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.mapreduce.tasks import AttemptState
from repro.sim.core import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import JobResult, MapReduceRuntime

__all__ = [
    "INVARIANTS",
    "InvariantViolation",
    "assert_invariants",
    "check_invariants",
    "settle",
    "state_probe",
]

#: Relative tolerance for byte accounting (float accumulation error).
_REL_TOL = 1e-6
#: Simulated seconds granted after job end for in-flight teardown
#: (speculative-loser kills, flow cancels) to drain before checking.
_SETTLE_SECONDS = 5.0


class InvariantViolation(SimulationError):
    """One or more post-run invariants failed."""

    def __init__(self, violations: list[str]) -> None:
        super().__init__("; ".join(violations))
        self.violations = list(violations)


# -- individual checkers -----------------------------------------------------

def check_termination(rt: "MapReduceRuntime", result: "JobResult") -> list[str]:
    """The job must end for a *modelled* reason: success, a task
    exhausting its attempt budget, or the AM exhausting its incarnation
    budget. A stall (frozen event loop / frozen progress) or an
    unexplained failure is a simulator bug."""
    out = []
    if result.counters.get("stalled"):
        out.append("termination: run stalled — "
                   + str(result.counters.get("stall_reason", "unknown")))
    elif (not result.success and not rt.trace.of_kind("task_failed")
          and not rt.trace.of_kind("am_attempts_exhausted")):
        out.append("termination: job failed without a task_failed or "
                   "am_attempts_exhausted cause")
    return out


def check_byte_conservation(rt: "MapReduceRuntime", result: "JobResult") -> list[str]:
    """On success, every reducer must have consumed its full partition
    (``shuffle_bytes * partition_weight``) exactly once — across however
    many attempts, migrations and log-resumes it took — and produced
    ``input * reduce_selectivity`` output bytes. Lost or double-counted
    bytes mean a recovery path dropped or replayed work."""
    if not result.success:
        return []
    out = []
    am = rt.am
    wl = rt.workload
    if len(am.reduce_commits) != am.num_reduces:
        out.append(f"bytes: {len(am.reduce_commits)} commit records for "
                   f"{am.num_reduces} reducers")
    for task in am.reduce_tasks:
        rec = am.reduce_commits.get(task.task_id)
        if rec is None:
            continue  # already reported above
        expected = wl.shuffle_bytes * float(am.partition_weights[task.partition_index])
        covered = rec["input_bytes"]
        resume = rec["resume_fraction"]
        if rec["mode"] == "fcm" and resume < 1.0:
            # FCM streams only the un-resumed remainder; logs covered the rest.
            covered = rec["input_bytes"] / (1.0 - resume)
        tol = max(1.0, _REL_TOL * expected)
        if abs(covered - expected) > tol:
            out.append(f"bytes: {task.name} covered {covered:.1f} of "
                       f"{expected:.1f} expected input bytes "
                       f"(mode={rec['mode']}, resume={resume:.3f})")
        expected_out = rec["input_bytes"] * wl.reduce_selectivity
        if abs(rec["output_bytes"] - expected_out) > max(1.0, _REL_TOL * expected_out):
            out.append(f"bytes: {task.name} wrote {rec['output_bytes']:.1f}, "
                       f"expected {expected_out:.1f} output bytes")
    return out


def check_no_orphans(rt: "MapReduceRuntime", result: "JobResult") -> list[str]:
    """After the job ends nothing job-owned may still be executing:
    no live attempt (or attempt-child) process, no active flow, no armed
    flow-scheduler timer. Infrastructure daemons (heartbeats, liveness
    monitor) legitimately run forever and are not counted."""
    if result.counters.get("stalled"):
        return []  # a wedged run leaves work in flight by definition
    out = []
    seen: set[int] = set()
    for am in getattr(rt, "am_incarnations", [rt.am]):
        for task in am.map_tasks + am.reduce_tasks:
            for attempt in task.attempts:
                if id(attempt) in seen:
                    continue  # adopted attempts appear under both AMs
                seen.add(id(attempt))
                if attempt.process is not None and attempt.process.is_alive:
                    out.append(f"orphans: attempt {attempt.attempt_id} "
                               f"({attempt.state.value}) still running")
                for child in attempt._children:
                    if child.is_alive:
                        out.append(f"orphans: child process of {attempt.attempt_id} "
                                   "still running")
    flows = rt.cluster.flows
    active = tuple(flows.active_flows)
    if active:
        names = ", ".join(f.name for f in active[:5])
        out.append(f"orphans: {len(active)} flows still active ({names})")
    timer = getattr(flows, "_timer", None)
    if not active and timer is not None and not getattr(timer, "cancelled", False):
        out.append("orphans: flow-scheduler timer armed with no active flows")
    return out


def check_containers_released(rt: "MapReduceRuntime", result: "JobResult") -> list[str]:
    """Every container must be back with the RM: a surviving NM with
    nonzero used memory after job end is a leak that starves every
    later job on a shared cluster."""
    if result.counters.get("stalled"):
        return []
    out = []
    for nm in rt.rm.node_managers.values():
        if nm.lost:
            continue  # its containers were force-killed with the node
        if nm.used_mb != 0 or nm.containers:
            held = ", ".join(f"c{c.container_id}" for c in nm.containers[:5])
            out.append(f"containers: {nm.node.name} still holds "
                       f"{nm.used_mb}MB ({held})")
    return out


def check_hdfs_consistency(rt: "MapReduceRuntime", result: "JobResult") -> list[str]:
    """NameNode metadata must agree with DataNode disks after any mix
    of crashes, partitions and rejoins: no dead node in a replica list,
    no duplicate replicas, and every listed live replica physically on
    that node's disk."""
    out = []
    for f in rt.hdfs._files.values():
        for b in f.blocks:
            seen = set()
            for node in b.replicas:
                if id(node) in seen:
                    out.append(f"hdfs: blk_{b.block_id} of {b.path} lists "
                               f"{node.name} twice")
                seen.add(id(node))
                if not node.alive:
                    out.append(f"hdfs: blk_{b.block_id} of {b.path} has dead "
                               f"replica {node.name}")
                elif not node.has_file(rt.hdfs._replica_path(b)):
                    out.append(f"hdfs: blk_{b.block_id} of {b.path} replica "
                               f"missing from {node.name}'s disk")
    return out


def check_trace_monotonic(rt: "MapReduceRuntime", result: "JobResult") -> list[str]:
    """Trace event times must never decrease: the differential verifier
    (:mod:`repro.verify`) diffs event streams positionally, so an event
    logged in the past — a kernel dispatching a stale timer, a process
    resumed out of order — would corrupt every downstream comparison,
    not just this run."""
    events = rt.trace.events
    for i in range(1, len(events)):
        if events[i].time < events[i - 1].time:
            return [f"trace: event {i} ({events[i].kind}) at t={events[i].time} "
                    f"logged after {events[i - 1].kind} at t={events[i - 1].time}"]
    return []


def check_am_singleton(rt: "MapReduceRuntime", result: "JobResult") -> list[str]:
    """At most one live AM per job, ever: every incarnation except the
    newest must have crashed before its successor was launched. Two
    concurrently-live AMs would double-schedule every task."""
    out = []
    incarnations = getattr(rt, "am_incarnations", [rt.am])
    live = [am for am in incarnations if not am._crashed]
    if len(live) > 1:
        out.append(f"am_singleton: {len(live)} non-crashed AM incarnations "
                   f"(attempts {[am.am_attempt for am in live]})")
    if live and live[-1] is not rt.am:
        out.append("am_singleton: live incarnation is not rt.am")
    for i, am in enumerate(incarnations):
        if am.am_attempt != i:
            out.append(f"am_singleton: incarnation {i} carries "
                       f"am_attempt={am.am_attempt}")
    return out


def check_am_no_orphans(rt: "MapReduceRuntime", result: "JobResult") -> list[str]:
    """After an AM restart nothing may be left dangling from the dead
    incarnation: its stashed orphan completion reports must be drained
    (replayed by the successor or torn down), and any attempt of its
    that is still RUNNING must have been adopted by the live AM."""
    if result.counters.get("stalled"):
        return []
    out = []
    incarnations = getattr(rt, "am_incarnations", [rt.am])
    for am in incarnations:
        if not am._crashed:
            continue
        if am._orphan_reports:
            out.append(f"am_orphans: AM attempt {am.am_attempt} still holds "
                       f"{len(am._orphan_reports)} undrained completion reports")
        for task in am.map_tasks + am.reduce_tasks:
            for attempt in task.running_attempts():
                if attempt.am is not rt.am:
                    out.append(f"am_orphans: attempt {attempt.attempt_id} of dead "
                               f"AM {am.am_attempt} running but not adopted")
    return out


INVARIANTS: dict[str, Callable] = {
    "termination": check_termination,
    "byte_conservation": check_byte_conservation,
    "no_orphans": check_no_orphans,
    "containers_released": check_containers_released,
    "hdfs_consistency": check_hdfs_consistency,
    "trace_monotonic": check_trace_monotonic,
    "am_singleton": check_am_singleton,
    "am_no_orphans": check_am_no_orphans,
}


# -- entry points ------------------------------------------------------------

def settle(rt: "MapReduceRuntime", seconds: float = _SETTLE_SECONDS) -> None:
    """Advance the simulation a little past job end.

    ``sim.run(until=am.done)`` returns the instant the job-end event
    fires; kill interrupts and flow cancels issued *at* that instant are
    still in the heap. Draining a few simulated seconds separates
    "teardown in flight" from genuinely leaked work."""
    if rt.sim.peek() == float("inf"):
        return
    rt.sim.run(until=rt.sim.now + seconds)


def check_invariants(
    rt: "MapReduceRuntime",
    result: "JobResult",
    names: list[str] | None = None,
    pre_settle: bool = True,
) -> list[str]:
    """Run the selected (default: all) checkers; return all violations."""
    if pre_settle and not result.counters.get("stalled"):
        settle(rt)
    selected = names if names is not None else list(INVARIANTS)
    violations: list[str] = []
    for name in selected:
        try:
            checker = INVARIANTS[name]
        except KeyError:
            raise SimulationError(f"unknown invariant: {name!r}") from None
        violations.extend(checker(rt, result))
    return violations


def assert_invariants(rt: "MapReduceRuntime", result: "JobResult",
                      names: list[str] | None = None) -> None:
    """Raise :class:`InvariantViolation` if any checker fails."""
    violations = check_invariants(rt, result, names)
    if violations:
        raise InvariantViolation(violations)


def state_probe(rt: "MapReduceRuntime") -> dict:
    """Debug helper: summarise post-run state for reproducer reports."""
    running = [
        a.attempt_id
        for t in rt.am.map_tasks + rt.am.reduce_tasks
        for a in t.attempts
        if a.process is not None and a.process.is_alive
    ]
    return {
        "now": rt.sim.now,
        "running_attempts": running,
        "active_flows": [f.name for f in rt.cluster.flows.active_flows],
        "vanished": sum(
            1 for t in rt.am.map_tasks + rt.am.reduce_tasks
            for a in t.attempts if a.state is AttemptState.VANISHED
        ),
    }
