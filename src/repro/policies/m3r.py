"""M3R-style in-memory shuffle baseline.

M3R (Shinnar et al., VLDB'12) runs the whole MapReduce pipeline in
memory: shuffled segments are never spilled, merged from, or re-read
off disk, which makes the fault-free path strictly faster — and makes
failure recovery strictly worse, because a node's in-memory map outputs
die with it instead of surviving on disk for re-fetch. This baseline
reproduces that trade so the zoo can measure it:

* reduce attempts keep every fetched segment in memory (the spill
  thresholds are lifted to infinity, so the stock fetch/merge machinery
  simply never takes its disk branches);
* on node loss, every completed map that lived on the dead node is
  eagerly re-executed at recovery priority — there is no MOF file for
  later fetchers to find, so waiting for fetch-failure reports (stock
  YARN's discovery path) would only stretch the stall.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.mapreduce.recovery import YarnRecoveryPolicy
from repro.mapreduce.reducetask import ReduceAttempt
from repro.mapreduce.tasks import Task
from repro.policies import register_policy
from repro.yarn.rm import Container

__all__ = ["M3RPolicy", "M3RReduceAttempt", "make_m3r"]


class M3RReduceAttempt(ReduceAttempt):
    """A reduce attempt that never touches disk during the shuffle."""

    def __init__(self, am, task: Task, container: Container,
                 recovery=None) -> None:
        super().__init__(am, task, container, recovery=recovery)
        # Lift every spill threshold: segments stay in memory, the
        # merger never triggers, and the final merge sees zero disk
        # segments (a no-op by construction).
        self._buffer = float("inf")
        self._single_segment_max = float("inf")
        self._merge_trigger = float("inf")


class M3RPolicy(YarnRecoveryPolicy):
    """In-memory shuffle + eager map regeneration on node loss."""

    name = "m3r"

    def make_reduce_attempt(self, task: Task, container: Container, **kwargs):
        return M3RReduceAttempt(self.am, task, container, **kwargs)

    def on_node_lost(self, node: Node) -> None:
        super().on_node_lost(node)
        # The dead node's MOFs were memory-resident: regenerate them now
        # rather than one fetch-failure report at a time.
        doomed = self.am.completed_maps_on(node)
        if doomed:
            self.am.trace.log("m3r_regenerate", node=node.name,
                              maps=len(doomed))
            for task in doomed:
                self.am.rerun_map(task,
                                  priority=self.am.conf.recovery_map_priority)


def make_m3r():
    return M3RPolicy()


register_policy("m3r", make_m3r,
                "M3R in-memory shuffle: no spills on the happy path, "
                "eager map regeneration on node loss")
