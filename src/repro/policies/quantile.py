"""Statistical straggler detection: a quantile model replaces LATE's
fixed slowness multiplier.

Stock speculation (``repro.mapreduce.speculation``) flags a task when
its estimated finish exceeds ``slowness_threshold x mean`` — a fixed
multiplier that over-fires on naturally skewed phases and under-fires
when one outlier drags the mean up with it. The quantile detector fits
the peer-duration distribution instead and speculates only above the
Tukey upper fence ``Q3 + k * IQR``, the textbook outlier boundary:
robust to the outlier itself (quantiles don't move when one value
explodes) and self-calibrating to each phase's natural spread.

Only the cutoff computation changes — the scan cadence, the estimate
kernels (scalar and columnar), the duplicate cap and the ``speculation``
trace record are all inherited, so the detector slots into the same
digest-pinned machinery the stock scanner uses.
"""

from __future__ import annotations

from repro.mapreduce.recovery import YarnRecoveryPolicy
from repro.mapreduce.speculation import SpeculationConfig, Speculator
from repro.policies import register_policy
from repro.sim.core import SimulationError

__all__ = ["QuantilePolicy", "QuantileSpeculator", "make_quantile",
           "quantile", "tukey_fence"]


def quantile(values: list[float], q: float) -> float:
    """Linear-interpolation quantile (numpy's default method), kept in
    pure Python so the detector works on the scalar data plane too."""
    if not values:
        raise SimulationError("quantile of empty sample")
    if not 0.0 <= q <= 1.0:
        raise SimulationError("q must be in [0, 1]")
    s = sorted(values)
    if len(s) == 1:
        return s[0]
    pos = q * (len(s) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(s) - 1)
    frac = pos - lo
    return s[lo] * (1.0 - frac) + s[hi] * frac


def tukey_fence(values: list[float], k: float = 1.5) -> float:
    """Tukey's upper outlier fence: ``Q3 + k * (Q3 - Q1)``."""
    q1 = quantile(values, 0.25)
    q3 = quantile(values, 0.75)
    return q3 + k * (q3 - q1)


class QuantileSpeculator(Speculator):
    """The stock scanner with a distribution-fit cutoff."""

    def __init__(self, am, config: SpeculationConfig | None = None, *,
                 min_samples: int = 4, fence_k: float = 1.5) -> None:
        super().__init__(am, config)
        if min_samples < 2:
            raise SimulationError("min_samples must be >= 2")
        self.min_samples = min_samples
        self.fence_k = fence_k

    def _cutoff(self, estimates, completed):
        # Prefer completed peers (their durations are facts, not
        # projections); fall back to the running estimates only when
        # enough of them exist to sketch a distribution.
        sample = (completed if len(completed) >= self.min_samples
                  else [e for e, _ in estimates])
        if len(sample) < self.min_samples:
            return None
        benchmark = sum(sample) / len(sample)
        return tukey_fence(sample, self.fence_k), benchmark


class QuantilePolicy(YarnRecoveryPolicy):
    """Stock recovery; speculation via the quantile detector."""

    name = "quantile"

    def __init__(self, min_samples: int = 4, fence_k: float = 1.5) -> None:
        super().__init__()
        self.min_samples = min_samples
        self.fence_k = fence_k

    def make_speculator(self, am, config=None):
        return QuantileSpeculator(am, config, min_samples=self.min_samples,
                                  fence_k=self.fence_k)


def make_quantile(min_samples: int = 4, fence_k: float = 1.5):
    return QuantilePolicy(min_samples=min_samples, fence_k=fence_k)


register_policy("quantile", make_quantile,
                "statistical straggler detector: Tukey-fence cutoff over "
                "peer durations replaces the fixed LATE threshold")
