"""Binocular speculation: dual recovery attempts sharing shuffle state.

When a ReduceTask fails, stock YARN relaunches one attempt and bets the
relaunch site is healthy. The binocular policy hedges with *two* eyes:

* the **anchor eye** relaunches on the failed attempt's node, carrying a
  :class:`~repro.mapreduce.reducetask.ReduceRecoveryState` snapshot of
  the dead attempt's shuffle progress — if the node survived (transient
  task failure) and the spill files are intact, the new attempt adopts
  them and skips the already-shuffled prefix;
* the **migrated eye** starts speculatively on any other node, fetching
  from scratch — insurance against the anchor node being the real
  problem.

Both eyes receive the *same* recovery-state object; whichever attempt
lands where the spills actually live adopts them (the adoption check in
``ReduceAttempt._apply_recovery`` requires every segment local and
intact), and the first eye to commit wins — the AM's normal
first-commit-wins rule retires the loser. Node loss gets the same
two-eyed treatment minus the anchor preference (there is no shuffle
state to share once the node's disks are gone).
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.mapreduce.recovery import YarnRecoveryPolicy
from repro.mapreduce.reducetask import ReduceRecoveryState
from repro.mapreduce.tasks import Task, TaskType
from repro.policies import register_policy

__all__ = ["BinocularPolicy", "make_binocular"]


class BinocularPolicy(YarnRecoveryPolicy):
    """Two-eyed reduce recovery on top of stock map handling."""

    name = "binocular"

    def __init__(self, max_parallel_attempts: int = 2) -> None:
        super().__init__()
        self.max_parallel_attempts = max_parallel_attempts

    # -- failure hooks ---------------------------------------------------------
    def on_task_failed(self, task: Task, attempt, reason: str) -> None:
        if task.task_type is TaskType.MAP:
            super().on_task_failed(task, attempt, reason)
            return
        shared = ReduceRecoveryState(
            fetched_map_ids=set(attempt.fetched),
            disk_segments=list(attempt.disk_segments),
        )
        anchor = attempt.node
        if not anchor.reachable or self.am.rm.is_lost(anchor):
            # No surviving node to anchor on: dual fresh attempts away
            # from the failure site.
            anchor = None
        self._dual_launch(task, shared=shared, anchor=anchor,
                          avoid=attempt.node)

    def on_node_lost(self, node: Node) -> None:
        am = self.am
        for task in am.tasks_running_on(node):
            if (task.is_finished or task.running_attempts()
                    or task.outstanding_requests):
                continue
            if task.task_type is TaskType.MAP:
                am.schedule_task(task, priority=am.conf.map_priority)
            else:
                # The node's disks died with it; nothing to share.
                self._dual_launch(task, shared=None, anchor=None, avoid=node)

    # -- internals --------------------------------------------------------
    def _dual_launch(self, task: Task, shared: ReduceRecoveryState | None,
                     anchor: Node | None, avoid: Node | None) -> None:
        am = self.am
        live = len(task.running_attempts()) + task.outstanding_requests
        if live >= self.max_parallel_attempts:
            return
        kwargs: dict = {"recovery": shared} if shared is not None else {}
        am.trace.log("binocular_dual", task=task.name,
                     anchor=anchor.name if anchor is not None else "none")
        # Eye 1: the anchor — prefer the failure site to re-adopt spills.
        am.schedule_task(
            task, priority=am.conf.reduce_priority,
            preferred=[anchor] if anchor is not None else None,
            exclude=None if anchor is not None else
            ([avoid] if avoid is not None else None),
            attempt_kwargs=dict(kwargs),
        )
        live += 1
        # Eye 2: the migrated speculative duplicate, away from the site.
        if live < self.max_parallel_attempts:
            am.schedule_task(
                task, priority=am.conf.reduce_priority,
                exclude=[avoid] if avoid is not None else None,
                attempt_kwargs=dict(kwargs, speculative=True),
            )


def make_binocular(max_parallel_attempts: int = 2):
    return BinocularPolicy(max_parallel_attempts=max_parallel_attempts)


register_policy("binocular", make_binocular,
                "dual recovery eyes per failed reduce: same-node state "
                "re-adoption + speculative migration")
