"""The recovery-policy registry: one name-keyed plugin surface.

Every recovery policy the simulator knows — the five seed systems the
paper compares (stock YARN, ALG, SFM, ALM, ISS) and the related-work
zoo (binocular speculation, ATLAS failure-aware placement, the
statistical straggler detector, M3R in-memory shuffle) — registers
itself here. The CLI (``--policy`` choices, ``chaos --policies``), the
chaos trial sampler, the verify scenario corpus, the workload generator
and the Table-2 experiment sweep all enumerate this registry instead of
hard-coding names, so a new policy module joins every harness for free.

Policy-author contract
----------------------

A policy is a :class:`~repro.mapreduce.recovery.RecoveryPolicy`
subclass plus one :func:`register_policy` call at module import time:

.. code-block:: python

    from repro.policies import register_policy

    class MyPolicy(YarnRecoveryPolicy):
        name = "mine"
        ...

    register_policy("mine", MyPolicy, "one-line description")

Drop the module into ``src/repro/policies/`` (discovered via
``pkgutil``) or expose it through a ``repro.policies`` entry point
(discovered via ``importlib.metadata``) — either way the registry
imports it on first use. Factories may declare optional keyword
tuning knobs; :func:`make_policy` passes through only the kwargs a
factory declares, so callers can offer one kwargs namespace across
the whole zoo (the historical ``experiments.common.make_policy``
contract).

Determinism rules: a policy must not consume wall-clock time or
unseeded randomness, and everything it does must flow through the
simulator — the conformance suite (``tests/test_policy_registry.py``)
re-runs every registered policy under every fault kind and requires
byte-identical trace digests across reruns and across the
``REPRO_DATA_PLANE`` / ``REPRO_SCHEDULER`` implementation matrix.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.core import SimulationError

__all__ = [
    "PolicySpec",
    "check_registry",
    "make_policy",
    "policy_names",
    "policy_specs",
    "register_policy",
    "seed_policy_names",
]


@dataclass(frozen=True)
class PolicySpec:
    """One registered recovery policy."""

    name: str
    factory: Callable[..., Any]
    description: str
    #: One of the five original hand-wired systems (the historical
    #: chaos-rotation set; new policies join campaigns via opt-in).
    seed: bool = False
    #: Module that registered the policy (discovery accounting).
    module: str = ""


#: Name -> spec, in registration order. Seed policies register first
#: (``seeds`` is imported before its siblings), so the first five names
#: are always yarn, alg, sfm, alm, iss — the historical rotation order.
_REGISTRY: dict[str, PolicySpec] = {}
_discovered = False


def register_policy(name: str, factory: Callable[..., Any], description: str,
                    *, seed: bool = False) -> PolicySpec:
    """Register a policy factory under ``name`` (import-time API)."""
    if name in _REGISTRY:
        raise SimulationError(f"duplicate policy name {name!r} "
                              f"(already registered by {_REGISTRY[name].module})")
    module = getattr(factory, "__module__", "") or ""
    spec = PolicySpec(name=name, factory=factory, description=description,
                      seed=seed, module=module)
    _REGISTRY[name] = spec
    return spec


def _discover() -> None:
    """Import every policy module exactly once, deterministically:
    ``seeds`` first (pins the historical name order), then the sibling
    modules alphabetically, then any third-party entry points."""
    global _discovered
    if _discovered:
        return
    _discovered = True
    importlib.import_module("repro.policies.seeds")
    for info in sorted(pkgutil.iter_modules(__path__), key=lambda m: m.name):
        if info.name != "seeds":
            importlib.import_module(f"repro.policies.{info.name}")
    try:  # pragma: no cover - no third-party policies in this repo
        from importlib.metadata import entry_points

        for ep in entry_points(group="repro.policies"):
            importlib.import_module(ep.value.partition(":")[0])
    except Exception:
        pass


def policy_names() -> tuple[str, ...]:
    """Every registered policy name, seed policies first."""
    _discover()
    return tuple(_REGISTRY)


def seed_policy_names() -> tuple[str, ...]:
    """The five original systems, in the historical rotation order."""
    _discover()
    return tuple(n for n, s in _REGISTRY.items() if s.seed)


def policy_specs() -> tuple[PolicySpec, ...]:
    _discover()
    return tuple(_REGISTRY.values())


def make_policy(name: str, **kwargs: Any):
    """Instantiate the policy registered under ``name``.

    ``kwargs`` is a shared tuning namespace: each factory receives only
    the keywords it declares (so ``make_policy("yarn", fcm_cap=3)`` is
    legal and ignores the knob, exactly as the pre-registry
    ``experiments.common.make_policy`` behaved).
    """
    _discover()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise SimulationError(
            f"unknown policy {name!r}; registered: {', '.join(_REGISTRY)}")
    params = inspect.signature(spec.factory).parameters
    if not any(p.kind is p.VAR_KEYWORD for p in params.values()):
        kwargs = {k: v for k, v in kwargs.items() if k in params}
    return spec.factory(**kwargs)


def check_registry() -> None:
    """Fail loudly when a policy module exists but registered nothing,
    or when the seed set drifted — the CI discovery gate."""
    _discover()
    modules = {info.name for info in pkgutil.iter_modules(__path__)}
    registered_from = {spec.module.rsplit(".", 1)[-1]
                       for spec in _REGISTRY.values()}
    silent = sorted(modules - registered_from)
    if silent:
        raise SimulationError(
            f"policy module(s) registered no policy: {', '.join(silent)}")
    if seed_policy_names() != ("yarn", "alg", "sfm", "alm", "iss"):
        raise SimulationError(
            f"seed policy set drifted: {seed_policy_names()!r}")
