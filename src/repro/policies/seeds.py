"""The five seed systems, migrated onto the registry byte-for-byte.

Each factory builds exactly the object the pre-registry
``experiments.common.make_policy`` built — same classes, same config
values — so every pinned golden digest is unchanged by the migration
(asserted by the parity tests in ``tests/test_policies_zoo.py`` and by
the golden corpus itself).

Registration order is the historical chaos-rotation order (yarn, alg,
sfm, alm, iss): ``repro.faults.chaos.CHAOS_POLICIES`` and campaign
seeds depend on it.
"""

from __future__ import annotations

from repro.alm import ALGConfig, ALMConfig, ALMPolicy
from repro.hdfs.hdfs import ReplicationLevel
from repro.mapreduce.recovery import YarnRecoveryPolicy
from repro.policies import register_policy

__all__ = ["make_alg", "make_alm", "make_iss", "make_sfm", "make_yarn"]


def make_yarn():
    return YarnRecoveryPolicy()


def make_alg(alg_frequency: float = 10.0,
             alg_level: ReplicationLevel = ReplicationLevel.RACK):
    alg = ALGConfig(frequency=alg_frequency, level=alg_level)
    return ALMPolicy(ALMConfig(enable_alg=True, enable_sfm=False, alg=alg))


def make_sfm(fcm_cap: int = 10):
    return ALMPolicy(ALMConfig(enable_alg=False, enable_sfm=True,
                               fcm_cap=fcm_cap))


def make_alm(alg_frequency: float = 10.0,
             alg_level: ReplicationLevel = ReplicationLevel.RACK,
             fcm_cap: int = 10):
    alg = ALGConfig(frequency=alg_frequency, level=alg_level)
    return ALMPolicy(ALMConfig(alg=alg, fcm_cap=fcm_cap))


def make_iss():
    from repro.baselines.iss import ISSPolicy

    return ISSPolicy()


register_policy("yarn", make_yarn,
                "stock YARN re-execution (the paper's amplification baseline)",
                seed=True)
register_policy("alg", make_alg,
                "analytics logging: reduce attempts resume from local/HDFS logs",
                seed=True)
register_policy("sfm", make_sfm,
                "speculative fast migration: proactive MOF regeneration + "
                "FCM recovery attempts", seed=True)
register_policy("alm", make_alm,
                "the full ALM framework (ALG + SFM)", seed=True)
register_policy("iss", make_iss,
                "intermediate-data replication (Ko et al. SoCC'10)",
                seed=True)
