"""ATLAS-style adaptive failure-aware placement.

ATLAS (Yildiz et al.) observed that task failures cluster on a small set
of unhealthy machines, and that re-running a failed task on the node
that just killed it is the single biggest amplifier of recovery time.
This policy keeps a sliding window of per-node attempt outcomes and
steers container requests away from nodes whose recent failure rate
crosses a threshold — recovery behaviour is otherwise stock YARN, so
the effect isolated is *where* work lands, not *what* is re-run.

Scoring is deliberately simple and fully deterministic: a node is risky
when at least ``min_observations`` of its last ``window`` outcomes are
recorded and the failure fraction is >= ``failure_threshold``. A node
that the RM declares lost takes a failure mark (the tasks it killed
never report), and a rejoining node gets amnesty — its history restarts
clean, matching ATLAS's recovery of reformed machines.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.node import Node
from repro.mapreduce.recovery import YarnRecoveryPolicy
from repro.mapreduce.tasks import Task
from repro.policies import register_policy
from repro.sim.core import SimulationError

__all__ = ["AtlasPolicy", "make_atlas"]


class AtlasPolicy(YarnRecoveryPolicy):
    """Stock recovery + outcome-history-driven placement steering."""

    name = "atlas"

    def __init__(self, window: int = 8, min_observations: int = 3,
                 failure_threshold: float = 0.5) -> None:
        super().__init__()
        if window < 1 or min_observations < 1:
            raise SimulationError("bad atlas window parameters")
        if not 0.0 < failure_threshold <= 1.0:
            raise SimulationError("failure_threshold must be in (0, 1]")
        self.window = window
        self.min_observations = min_observations
        self.failure_threshold = failure_threshold
        #: node_id -> recent outcomes (True = attempt succeeded).
        self.node_outcomes: dict[int, deque[bool]] = {}

    # -- history ----------------------------------------------------------
    def on_attempt_outcome(self, attempt, ok: bool) -> None:
        history = self.node_outcomes.setdefault(
            attempt.node.node_id, deque(maxlen=self.window))
        history.append(ok)

    def on_node_lost(self, node: Node) -> None:
        # The node took its running attempts with it; that is the
        # strongest failure signal there is.
        history = self.node_outcomes.setdefault(
            node.node_id, deque(maxlen=self.window))
        history.append(False)
        super().on_node_lost(node)

    def on_node_rejoined(self, node: Node) -> None:
        self.node_outcomes.pop(node.node_id, None)  # amnesty
        super().on_node_rejoined(node)

    def failure_score(self, node_id: int) -> float:
        """Failure fraction over the window, or 0.0 below the
        observation floor (an unknown node is innocent). A node the RM
        has declared lost more than once (flapping) scores 1.0 outright
        — the RM's lifetime count survives AM restarts, so a fresh AM
        incarnation doesn't have to relearn a chronic flapper."""
        if self.am is not None \
                and self.am.rm.node_lost_counts.get(node_id, 0) >= 2:
            return 1.0
        history = self.node_outcomes.get(node_id)
        if history is None or len(history) < self.min_observations:
            return 0.0
        return sum(1 for ok in history if not ok) / len(history)

    # -- placement --------------------------------------------------------
    def steer_placement(self, task: Task, preferred, exclude):
        am = self.am
        healthy = am.rm.healthy_nodes()
        risky = [n for n in healthy
                 if self.failure_score(n.node_id) >= self.failure_threshold]
        # Never veto the whole cluster: a job must still place work when
        # every node looks bad (mass failure is exactly when recovery
        # pressure peaks).
        if not risky or len(risky) >= len(healthy):
            return preferred, exclude
        new_exclude = list(exclude or [])
        added = [n for n in risky if n not in new_exclude]
        if not added:
            return preferred, exclude
        new_exclude.extend(added)
        if preferred:
            vetoed = set(added)
            preferred = [n for n in preferred if n not in vetoed] or None
        am.trace.log("atlas_steer", task=task.name,
                     excluded=",".join(n.name for n in added))
        return preferred, new_exclude


def make_atlas(window: int = 8, min_observations: int = 3,
               failure_threshold: float = 0.5):
    return AtlasPolicy(window=window, min_observations=min_observations,
                       failure_threshold=failure_threshold)


register_policy("atlas", make_atlas,
                "failure-aware placement: sliding-window node outcome "
                "history vetoes chronically failing nodes")
