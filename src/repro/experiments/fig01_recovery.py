"""Fig. 1 — recovery time: one ReduceTask failure vs many MapTask
failures.

The paper's headline motivation: YARN recovers quickly from even 200
MapTask failures but takes an order of magnitude longer to recover from
a *single* ReduceTask failure.

Recovery time is measured per failure, not as a job-time delta:
for a map-failure wave it is the span from the injection until the last
killed map re-completes; for a ReduceTask failure it is the span from
the injection until the failed task commits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.faults import kill_maps_at_time, kill_reduce_at_progress
from repro.workloads import terasort

__all__ = ["Fig01Row", "fig01_recovery_time"]


@dataclass
class Fig01Row:
    failure: str
    count: int
    job_time: float
    recovery_time: float


def fig01_recovery_time(
    map_failure_counts=(1, 10, 50, 100, 200),
    reduce_failure_progress: float = 0.9,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Fig01Row]:
    scale = scale_from_env(1.0) if scale is None else scale
    wl = terasort(100.0 * scale)
    rows: list[Fig01Row] = []

    # Kill N maps mid-way through the first map wave.
    first_wave_kill_time = 10.0
    for n in map_failure_counts:
        fault = kill_maps_at_time(n, at_time=first_wave_kill_time)
        _, res = run_benchmark_job(wl, "yarn", faults=[fault], config=config,
                                   job_name=f"fig01-maps{n}")
        recovery = _map_wave_recovery(res, fault)
        rows.append(Fig01Row("maptasks", fault.killed, res.elapsed, recovery))

    fault = kill_reduce_at_progress(reduce_failure_progress)
    _, res = run_benchmark_job(wl, "yarn", faults=[fault], config=config,
                               job_name="fig01-reduce")
    rows.append(Fig01Row("reducetask", 1, res.elapsed,
                         _reduce_recovery(res, fault)))
    return rows


def _map_wave_recovery(res, fault) -> float:
    """Injection -> last killed map re-completed."""
    if fault.fired_at is None or not fault.killed_tasks:
        return 0.0
    killed = set(fault.killed_tasks)
    last = fault.fired_at
    for e in res.trace.of_kind("attempt_success"):
        if e.data["task"] in killed and e.time > fault.fired_at:
            last = max(last, e.time)
            killed.discard(e.data["task"])
    return last - fault.fired_at


def _reduce_recovery(res, fault) -> float:
    """Injection -> failed ReduceTask committed."""
    if fault.fired_at is None:
        return 0.0
    commit = res.trace.last("reduce_commit", task="reduce-0")
    end = commit.time if commit is not None else res.end_time
    return max(0.0, end - fault.fired_at)
