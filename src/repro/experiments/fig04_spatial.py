"""Fig. 4 — a single node failure infects healthy ReduceTasks.

Terasort with 20 ReduceTasks; a node that hosts MOFs (and, ideally, no
ReduceTask) is taken down; under stock YARN healthy reducers on other
nodes accumulate fetch failures and are preempted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.faults import kill_node_at_progress
from repro.workloads import terasort

__all__ = ["Fig04Result", "fig04_spatial_amplification"]


@dataclass
class Fig04Result:
    job_time: float
    crash_time: float
    victim: str
    infected_failures: list[tuple[float, str, str]] = field(default_factory=list)
    progress_series: list[tuple[float, float]] = field(default_factory=list)
    failed_series: list[tuple[float, float]] = field(default_factory=list)

    @property
    def additional_failures(self) -> int:
        return len(self.infected_failures)


def fig04_spatial_amplification(
    crash_progress: float = 0.2,
    system: str = "yarn",
    num_reducers: int = 20,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> Fig04Result:
    scale = scale_from_env(1.0) if scale is None else scale
    wl = terasort(100.0 * scale, num_reducers=num_reducers)
    fault = kill_node_at_progress(crash_progress, target="map-only")
    rt, res = run_benchmark_job(wl, system, faults=[fault], config=config,
                                job_name=f"fig04-{system}")
    trace = res.trace
    crash_time = fault.fired_at if fault.fired_at is not None else float("nan")
    infected = [
        (e.time, e.data["attempt"], e.data["node"])
        for e in trace.of_kind("attempt_failed")
        if e.data["type"] == "reduce"
        and e.time >= (crash_time if crash_time == crash_time else 0.0)
        and e.data["node"] != fault.victim_name
    ]
    return Fig04Result(
        job_time=res.elapsed,
        crash_time=crash_time,
        victim=fault.victim_name or "(none)",
        infected_failures=infected,
        progress_series=trace.series_values("reduce_progress"),
        failed_series=trace.series_values("failed_reduce_attempts"),
    )
