"""Fig. 9 — SFM vs YARN under a node failure injected at varying points
of the reduce phase, for the three benchmarks plus failure-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.experiments.fig08_alg import PAPER_INPUTS
from repro.faults import kill_node_at_progress
from repro.workloads import secondarysort, terasort, wordcount

__all__ = ["Fig09Row", "fig09_sfm_node_failure"]


@dataclass
class Fig09Row:
    workload: str
    system: str
    progress: float  # node-failure point in the reduce phase; -1 = failure-free
    job_time: float
    additional_reduce_failures: int


def fig09_sfm_node_failure(
    progress_points=(0.1, 0.3, 0.5, 0.7, 0.9),
    systems=("yarn", "sfm"),
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Fig09Row]:
    scale = scale_from_env(1.0) if scale is None else scale
    workloads = [
        terasort(PAPER_INPUTS["terasort"] * scale),
        wordcount(PAPER_INPUTS["wordcount"] * scale),
        secondarysort(PAPER_INPUTS["secondarysort"] * scale),
    ]
    rows: list[Fig09Row] = []
    for wl in workloads:
        _, base = run_benchmark_job(wl, "yarn", config=config,
                                    job_name=f"fig09-{wl.name}-base")
        rows.append(Fig09Row(wl.name, "failure-free", -1.0, base.elapsed, 0))
        for p in progress_points:
            for system in systems:
                fault = kill_node_at_progress(p, target="reducer")
                _, res = run_benchmark_job(
                    wl, system, faults=[fault], config=config,
                    job_name=f"fig09-{wl.name}-{system}-{p}")
                rows.append(Fig09Row(
                    wl.name, system, p, res.elapsed,
                    res.counters["failed_reduce_attempts"]))
    return rows
