"""Fig. 14 — SFM recovery under multiple concurrent ReduceTask
failures, with per-reducer intermediate data from 1 to 32 GB.

The paper reports SFM cutting recovery time by up to 40.7/44.3/49.5%
for 1/5/10 concurrent failures, with the improvement growing with the
data size (disk-bound merging dominates the stock restart; FCM's
in-memory collective merge does not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.faults import kill_reduce_at_progress
from repro.workloads import terasort

__all__ = ["Fig14Row", "fig14_concurrent_failures"]


@dataclass
class Fig14Row:
    per_reducer_gb: float
    concurrent_failures: int
    system: str
    job_time: float
    recovery_time: float


def fig14_concurrent_failures(
    per_reducer_gb=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    failure_counts=(1, 5, 10),
    systems=("yarn", "sfm"),
    num_reducers: int = 10,
    failure_progress: float = 0.75,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Fig14Row]:
    scale = scale_from_env(1.0) if scale is None else scale
    rows: list[Fig14Row] = []
    for gb in per_reducer_gb:
        wl = terasort(gb * num_reducers * scale, num_reducers=num_reducers)
        for k in failure_counts:
            k = min(k, num_reducers)
            for system in systems:
                faults = [kill_reduce_at_progress(failure_progress, task_index=i)
                          for i in range(k)]
                _, res = run_benchmark_job(
                    wl, system, faults=faults, config=config,
                    job_name=f"fig14-{system}-{gb}x{k}")
                fired = [f.fired_at for f in faults if f.fired_at is not None]
                t0 = min(fired) if fired else res.end_time
                rows.append(Fig14Row(gb, k, system, res.elapsed,
                                     max(0.0, res.end_time - t0)))
    return rows
