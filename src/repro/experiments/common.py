"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.alm import ALGConfig, ALMConfig, ALMPolicy
from repro.cluster import ClusterSpec
from repro.hdfs.hdfs import HdfsConfig, ReplicationLevel
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import JobResult, MapReduceRuntime
from repro.mapreduce.recovery import YarnRecoveryPolicy
from repro.runner import TrialRunner, trace_digest
from repro.workloads import Workload
from repro.yarn.rm import YarnConfig

__all__ = [
    "ExperimentConfig",
    "averaged_job_time",
    "format_table",
    "invariants_from_env",
    "make_policy",
    "run_benchmark_job",
    "run_benchmark_trial",
    "scale_from_env",
]


def scale_from_env(default: float = 1.0) -> float:
    """Input-size scale: 1.0 reproduces the paper's sizes; the
    ``REPRO_SCALE`` environment variable overrides (benchmarks use it
    to trade fidelity for wall time)."""
    return float(os.environ.get("REPRO_SCALE", default))


def invariants_from_env() -> bool:
    """Whether to run the post-run invariant suite on every trial
    (``REPRO_INVARIANTS=1``): trials record violations in their payload
    and the :class:`~repro.runner.TrialRunner` fails loudly on any."""
    return os.environ.get("REPRO_INVARIANTS", "") not in ("", "0")


@dataclass
class ExperimentConfig:
    """Cluster/framework setup shared by all experiments.

    Defaults mirror the paper's testbed (§V-A): 21 nodes (1 master +
    20 workers), two racks, Table I parameters.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    yarn: YarnConfig = field(default_factory=YarnConfig)
    hdfs: HdfsConfig = field(default_factory=HdfsConfig)
    job: JobConf = field(default_factory=JobConf)
    seed: int = 2015

    def with_seed(self, seed: int) -> "ExperimentConfig":
        from dataclasses import replace

        return ExperimentConfig(
            cluster=replace(self.cluster, seed=seed),
            yarn=self.yarn, hdfs=self.hdfs, job=self.job, seed=seed,
        )


def make_policy(system: str, alg_frequency: float = 10.0,
                alg_level: ReplicationLevel = ReplicationLevel.RACK,
                fcm_cap: int = 10):
    """Build the recovery policy for a named system under test.

    Thin wrapper over the policy registry (:mod:`repro.policies`) kept
    for its historical signature: the experiment drivers pass one
    kwargs namespace and each registered factory receives only the
    knobs it declares.
    """
    from repro.policies import make_policy as registry_make_policy

    return registry_make_policy(system, alg_frequency=alg_frequency,
                                alg_level=alg_level, fcm_cap=fcm_cap)


def run_benchmark_job(
    workload: Workload,
    system: str = "yarn",
    faults: Iterable[Any] = (),
    config: ExperimentConfig | None = None,
    job_name: str | None = None,
    policy_kwargs: dict | None = None,
) -> tuple[MapReduceRuntime, JobResult]:
    """Run one job under one system with faults; returns (runtime, result)."""
    cfg = config or ExperimentConfig()
    rt = MapReduceRuntime(
        workload,
        conf=cfg.job,
        cluster_spec=cfg.cluster,
        yarn_config=cfg.yarn,
        hdfs_config=cfg.hdfs,
        policy=make_policy(system, **(policy_kwargs or {})),
        job_name=job_name or f"{workload.name}-{system}",
    )
    for fault in faults:
        fault.install(rt)
    return rt, rt.run()


def run_benchmark_trial(
    seed: int,
    workload: Workload,
    system: str = "yarn",
    fault_factory: Callable[[], Any] | None = None,
    base_config: ExperimentConfig | None = None,
    job_name: str = "trial",
    policy_kwargs: dict | None = None,
) -> dict[str, Any]:
    """One seeded job, reduced to a picklable payload.

    This is the :class:`~repro.runner.TrialRunner` fan-out target for
    every experiment that averages or sweeps independent seeds: workers
    cannot ship a live :class:`MapReduceRuntime` back across the process
    boundary, so the trial collapses to elapsed time, counters and the
    trace digest that pins seed-determinism.
    """
    cfg = (base_config or ExperimentConfig()).with_seed(seed)
    faults = [fault_factory()] if fault_factory is not None else []
    rt, res = run_benchmark_job(workload, system, faults=faults, config=cfg,
                                job_name=f"{job_name}-s{seed}",
                                policy_kwargs=policy_kwargs)
    payload = {
        "elapsed": res.elapsed,
        "success": res.success,
        "counters": dict(res.counters),
        "digest": trace_digest(res.trace),
    }
    if invariants_from_env():
        from repro.invariants import check_invariants

        payload["invariant_violations"] = check_invariants(rt, res)
    return payload


def averaged_job_time(
    workload: Workload,
    system: str,
    fault_factory: Callable[[], Any] | None = None,
    config: ExperimentConfig | None = None,
    repeats: int = 3,
    job_name: str = "avg",
    policy_kwargs: dict | None = None,
) -> float:
    """Mean job time over ``repeats`` seeds (the paper's 'average of
    three test runs'); damps placement/scheduling noise that a single
    simulated run shares with a single testbed run.

    Trials go through the :class:`~repro.runner.TrialRunner`: with
    ``REPRO_JOBS > 1`` (and a picklable spec) the seeds run in worker
    processes, and with ``REPRO_TRIAL_CACHE`` set, completed seeds are
    memoized on disk. Results are identical to the serial path.
    """
    cfg = config or ExperimentConfig()
    seeds = [cfg.seed + 101 * k for k in range(repeats)]
    results = TrialRunner().run(
        experiment=f"averaged_job_time:{workload.name}:{system}:{job_name}",
        fn=run_benchmark_trial,
        seeds=seeds,
        kwargs=dict(workload=workload, system=system, fault_factory=fault_factory,
                    base_config=cfg, job_name=job_name,
                    policy_kwargs=policy_kwargs),
    )
    times = [r.payload["elapsed"] for r in results]
    return sum(times) / len(times)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str | None = None) -> str:
    """Plain-text table matching how the benches report paper rows."""
    rows = [[_fmt(c) for c in r] for r in rows]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
