"""Fig. 13 — impact of ALG's replication level on the reduce stage.

Terasort 10..320 GB with ALG's reduce-stage logs/output replicated at
node, rack or cluster level. The paper reports ~18.4% reduce-stage
slowdown for rack and ~55.7% for cluster replication at 320 GB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.hdfs.hdfs import ReplicationLevel
from repro.workloads import terasort

__all__ = ["Fig13Row", "fig13_replication_levels"]


@dataclass
class Fig13Row:
    input_gb: float
    level: str
    job_time: float
    reduce_phase_time: float


def _reduce_phase_time(res) -> float:
    """Time from first reducer launch to job end."""
    first = res.trace.first("attempt_start", type="reduce")
    if first is None:
        return float("nan")
    return res.end_time - first.time


def fig13_replication_levels(
    input_sizes_gb=(10.0, 40.0, 160.0, 320.0),
    levels=(ReplicationLevel.NODE, ReplicationLevel.RACK, ReplicationLevel.CLUSTER),
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Fig13Row]:
    scale = scale_from_env(1.0) if scale is None else scale
    rows: list[Fig13Row] = []
    for gb in input_sizes_gb:
        wl = terasort(gb * scale)
        for level in levels:
            _, res = run_benchmark_job(
                wl, "alg", config=config,
                job_name=f"fig13-{level.value}-{gb}",
                policy_kwargs={"alg_level": level})
            rows.append(Fig13Row(gb, level.value, res.elapsed, _reduce_phase_time(res)))
    return rows
