"""Ablations of ALM's design choices (DESIGN.md §5).

Not figures from the paper — these decompose *why* ALM works:

- ``ablate_sfm_components`` — turn SFM's two anti-amplification levers
  (proactive MOF regeneration, wait-don't-fail) on/off independently on
  the spatial-amplification scenario.
- ``ablate_fcm_cap`` — the Algorithm 1 line 16 cap under concurrent
  reducer failures.
- ``ablate_liveness_timeout`` — how the RM's NM-expiry timeout sets the
  floor of every node-failure recovery (the first leg of Fig. 3).
- ``compare_iss`` — the §VI related-work baseline (ISS) vs stock YARN
  vs SFM, on failure-free overhead and node-failure recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alm import ALMConfig, ALMPolicy
from repro.baselines import ISSPolicy
from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.faults import kill_node_at_progress, kill_reduce_at_progress
from repro.mapreduce.job import MapReduceRuntime
from repro.workloads import terasort, wordcount
from repro.yarn.rm import YarnConfig

__all__ = [
    "AblationRow",
    "ablate_alg_frequency_recovery",
    "ablate_fcm_cap",
    "ablate_liveness_timeout",
    "ablate_sfm_components",
    "compare_iss",
]


@dataclass
class AblationRow:
    variant: str
    job_time: float
    additional_reduce_failures: int
    map_reruns: int


def _sfm(proactive: bool = True, wait: bool = True, fcm_cap: int = 10) -> ALMPolicy:
    return ALMPolicy(ALMConfig(enable_alg=False, enable_sfm=True,
                               proactive_regeneration=proactive,
                               wait_dont_fail=wait, fcm_cap=fcm_cap))


def ablate_sfm_components(
    crash_progress: float = 0.2,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[AblationRow]:
    """Spatial-amplification scenario under four SFM variants."""
    scale = scale_from_env(1.0) if scale is None else scale
    wl = terasort(100.0 * scale, num_reducers=20)
    variants = [
        ("yarn (neither)", None),
        ("regen only", _sfm(proactive=True, wait=False)),
        ("wait only", _sfm(proactive=False, wait=True)),
        ("full sfm", _sfm(proactive=True, wait=True)),
    ]
    rows = []
    for name, policy in variants:
        fault = kill_node_at_progress(crash_progress, target="map-only")
        if policy is None:
            _, res = run_benchmark_job(wl, "yarn", faults=[fault], config=config,
                                       job_name=f"ablate-{name}")
        else:
            _, res = _run_with_policy(wl, policy, [fault], config, f"ablate-{name}")
        rows.append(AblationRow(name, res.elapsed,
                                res.counters["failed_reduce_attempts"],
                                res.counters["map_reruns"]))
    return rows


def ablate_fcm_cap(
    caps=(0, 1, 10),
    concurrent_failures: int = 5,
    per_reducer_gb: float = 8.0,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[AblationRow]:
    """Concurrent reducer failures recovered with different FCM budgets."""
    scale = scale_from_env(1.0) if scale is None else scale
    reducers = 10
    wl = terasort(per_reducer_gb * reducers * scale, num_reducers=reducers)
    rows = []
    for cap in caps:
        faults = [kill_reduce_at_progress(0.75, task_index=i)
                  for i in range(concurrent_failures)]
        _, res = _run_with_policy(wl, _sfm(fcm_cap=cap), faults, config,
                                  f"ablate-fcmcap{cap}")
        rows.append(AblationRow(f"fcm_cap={cap}", res.elapsed,
                                res.counters["failed_reduce_attempts"],
                                res.counters["map_reruns"]))
    return rows


def ablate_liveness_timeout(
    timeouts=(30.0, 70.0, 150.0),
    scale: float | None = None,
) -> list[AblationRow]:
    """Fig. 3 scenario with different NM-expiry timeouts: detection
    latency puts a floor under every node-failure recovery."""
    scale = scale_from_env(1.0) if scale is None else scale
    rows = []
    for timeout in timeouts:
        cfg = ExperimentConfig(yarn=YarnConfig(nm_liveness_timeout=timeout))
        wl = wordcount(10.0 * scale, num_reducers=1)
        fault = kill_node_at_progress(0.35, target="reducer")
        _, res = _run_with_policy(wl, _sfm(), [fault], cfg, f"ablate-to{timeout}")
        rows.append(AblationRow(f"timeout={timeout:.0f}s", res.elapsed,
                                res.counters["failed_reduce_attempts"],
                                res.counters["map_reruns"]))
    return rows


def ablate_alg_frequency_recovery(
    frequencies=(2.0, 10.0, 40.0),
    failure_progress: float = 0.85,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[AblationRow]:
    """How the ALG logging interval bounds recovery loss.

    The paper (§III-A) notes that frequent logging keeps the analytics
    progress at risk small; here a late transient ReduceTask failure
    measures exactly that: the resumed attempt loses at most one
    logging interval of reduce work.
    """
    scale = scale_from_env(1.0) if scale is None else scale
    wl = wordcount(10.0 * scale, num_reducers=1)
    rows = []
    for freq in frequencies:
        pol = ALMPolicy(ALMConfig(enable_alg=True, enable_sfm=False,
                                  alg=replace_freq(freq)))
        fault = kill_reduce_at_progress(failure_progress)
        _, res = _run_with_policy(wl, pol, [fault], config, f"ablate-freq{freq}")
        rows.append(AblationRow(f"interval={freq:.0f}s", res.elapsed,
                                res.counters["failed_reduce_attempts"],
                                res.counters["map_reruns"]))
    return rows


def replace_freq(freq: float):
    from repro.alm import ALGConfig

    return ALGConfig(frequency=freq)


def compare_iss(
    crash_progress: float = 0.35,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[AblationRow]:
    """YARN vs ISS vs SFM: failure-free overhead + node-failure recovery.

    Terasort is the revealing workload: its intermediate data equals
    its input, so ISS's whole-MOF replication costs a full extra pass
    of shuffle-sized traffic on every job (the paper's §VI critique),
    while SFM pays nothing until a failure happens.
    """
    scale = scale_from_env(1.0) if scale is None else scale
    wl = terasort(100.0 * scale, num_reducers=20)
    rows = []
    for name, make in (("yarn", lambda: None), ("iss", ISSPolicy), ("sfm", _sfm)):
        policy = make()
        # failure-free
        if policy is None:
            _, free = run_benchmark_job(wl, "yarn", config=config,
                                        job_name=f"iss-free-{name}")
        else:
            _, free = _run_with_policy(wl, policy, [], config, f"iss-free-{name}")
        rows.append(AblationRow(f"{name} failure-free", free.elapsed, 0, 0))
        # node failure
        policy = make()
        fault = kill_node_at_progress(crash_progress, target="reducer")
        if policy is None:
            _, res = run_benchmark_job(wl, "yarn", faults=[fault], config=config,
                                       job_name=f"iss-fail-{name}")
        else:
            _, res = _run_with_policy(wl, policy, [fault], config, f"iss-fail-{name}")
        rows.append(AblationRow(f"{name} node-failure", res.elapsed,
                                res.counters["failed_reduce_attempts"],
                                res.counters["map_reruns"]))
    return rows


def _run_with_policy(wl, policy, faults, config, job_name):
    cfg = config or ExperimentConfig()
    rt = MapReduceRuntime(
        wl, conf=cfg.job, cluster_spec=cfg.cluster, yarn_config=cfg.yarn,
        hdfs_config=cfg.hdfs, policy=policy, job_name=job_name,
    )
    for fault in faults:
        fault.install(rt)
    return rt, rt.run()
