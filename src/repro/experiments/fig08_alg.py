"""Fig. 8 — ALG vs YARN under a single transient ReduceTask failure
injected at 10%..90% of the ReduceTask's progress, for the three
benchmarks plus the failure-free reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.faults import kill_reduce_at_progress
from repro.workloads import secondarysort, terasort, wordcount

__all__ = ["Fig08Row", "fig08_alg_task_failure", "PAPER_INPUTS"]

#: §V-B input sizes (GB): Terasort 100, Wordcount 10, Secondarysort 10.
PAPER_INPUTS = {"terasort": 100.0, "wordcount": 10.0, "secondarysort": 10.0}


@dataclass
class Fig08Row:
    workload: str
    system: str
    progress: float  # failure injection point; -1 = failure-free
    job_time: float


def _workloads(scale: float):
    return [
        terasort(PAPER_INPUTS["terasort"] * scale),
        wordcount(PAPER_INPUTS["wordcount"] * scale),
        secondarysort(PAPER_INPUTS["secondarysort"] * scale),
    ]


def fig08_alg_task_failure(
    progress_points=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    systems=("yarn", "alg"),
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Fig08Row]:
    scale = scale_from_env(1.0) if scale is None else scale
    rows: list[Fig08Row] = []
    for wl in _workloads(scale):
        _, base = run_benchmark_job(wl, "yarn", config=config,
                                    job_name=f"fig08-{wl.name}-base")
        rows.append(Fig08Row(wl.name, "failure-free", -1.0, base.elapsed))
        for p in progress_points:
            for system in systems:
                _, res = run_benchmark_job(
                    wl, system, faults=[kill_reduce_at_progress(p)],
                    config=config, job_name=f"fig08-{wl.name}-{system}-{p}")
                rows.append(Fig08Row(wl.name, system, p, res.elapsed))
    return rows


def mean_improvement(rows: list[Fig08Row], workload: str,
                     baseline: str = "yarn", system: str = "alg") -> float:
    """Average % improvement of ``system`` over ``baseline`` across the
    swept failure points (the paper reports 15.4/20.1/15.9%)."""
    by_p: dict[float, dict[str, float]] = {}
    for r in rows:
        if r.workload == workload and r.progress >= 0:
            by_p.setdefault(r.progress, {})[r.system] = r.job_time
    gains = [
        (1.0 - vals[system] / vals[baseline]) * 100.0
        for vals in by_p.values()
        if baseline in vals and system in vals
    ]
    return sum(gains) / len(gains) if gains else float("nan")
