"""Fig. 10 — SFM eliminates temporal amplification.

Same setup as Fig. 3 (Wordcount, 1 ReduceTask, node failure) but under
SFM: on detection, SFM first regenerates the lost MOFs (delaying the
recovery launch by ~18 s) and the recovered ReduceTask suffers no
repeated fetch-failure preemption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig03_temporal import Fig03Result, fig03_temporal_amplification

__all__ = ["Fig10Result", "fig10_sfm_trace"]


@dataclass
class Fig10Result:
    yarn: Fig03Result
    sfm: Fig03Result

    @property
    def sfm_eliminates_repeat_failures(self) -> bool:
        return len(self.sfm.repeat_failure_times) == 0

    @property
    def recovery_launch_delay(self) -> float:
        """Time SFM spends regenerating MOFs before the recovered
        ReduceTask becomes effective (paper: ~18 s)."""
        return self.sfm.effective_recovery_start - self.sfm.detect_time


def fig10_sfm_trace(
    crash_progress: float = 0.35,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> Fig10Result:
    return Fig10Result(
        yarn=fig03_temporal_amplification(crash_progress, "yarn", scale, config),
        sfm=fig03_temporal_amplification(crash_progress, "sfm", scale, config),
    )
