"""Experiment drivers — one per table/figure in the paper's evaluation.

Every driver is a plain function returning structured rows (lists of
dataclasses) and is used by three consumers: the test suite (shape
assertions), the benchmark harness (regenerating the paper's numbers)
and the examples. ``scale`` rescales input sizes (1.0 = the paper's
sizes) so quick runs and full reproductions share one code path.
"""

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    run_benchmark_job,
    run_benchmark_trial,
)
from repro.experiments.fig01_recovery import fig01_recovery_time
from repro.experiments.fig02_delay import fig02_delayed_execution
from repro.experiments.fig03_temporal import fig03_temporal_amplification
from repro.experiments.fig04_spatial import fig04_spatial_amplification
from repro.experiments.fig08_alg import fig08_alg_task_failure
from repro.experiments.fig09_sfm import fig09_sfm_node_failure
from repro.experiments.fig10_sfm_trace import fig10_sfm_trace
from repro.experiments.fig11_overhead import fig11_alg_overhead
from repro.experiments.fig12_frequency import fig12_log_frequency
from repro.experiments.fig13_replication import fig13_replication_levels
from repro.experiments.fig14_concurrent import fig14_concurrent_failures
from repro.experiments.fig15_combined import fig15_sfm_plus_alg
from repro.experiments.table2_spatial import table2_spatial_recovery

__all__ = [
    "ExperimentConfig",
    "fig01_recovery_time",
    "fig02_delayed_execution",
    "fig03_temporal_amplification",
    "fig04_spatial_amplification",
    "fig08_alg_task_failure",
    "fig09_sfm_node_failure",
    "fig10_sfm_trace",
    "fig11_alg_overhead",
    "fig12_log_frequency",
    "fig13_replication_levels",
    "fig14_concurrent_failures",
    "fig15_sfm_plus_alg",
    "format_table",
    "run_benchmark_job",
    "run_benchmark_trial",
    "table2_spatial_recovery",
]
