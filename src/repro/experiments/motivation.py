"""The paper's motivating claim, measured end-to-end (§I).

Kavulya et al.'s production trace shows jobs routinely failed or
delayed by task/node failures; the paper argues most of the damage
comes from ReduceTask handling. Here a trace-like fleet of jobs runs on
one shared cluster with random node failures, once under stock YARN
recovery and once under ALM, and we report the fleet-level outcome: how
many jobs were delayed badly, and the mean/percentile slowdown versus
the same fleet without failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alm import ALMPolicy
from repro.experiments.common import ExperimentConfig, scale_from_env
from repro.faults import kill_node_at_progress
from repro.mapreduce.multijob import SharedCluster
from repro.workloads.generator import TraceMix

__all__ = ["FleetResult", "run_fleet", "motivation_fleet"]


@dataclass
class FleetResult:
    policy: str
    job_slowdowns: dict[str, float] = field(default_factory=dict)
    failed_jobs: int = 0
    total_reduce_failures: int = 0
    makespan: float = 0.0

    @property
    def mean_slowdown(self) -> float:
        vals = list(self.job_slowdowns.values())
        return sum(vals) / len(vals) if vals else float("nan")

    @property
    def worst_slowdown(self) -> float:
        return max(self.job_slowdowns.values()) if self.job_slowdowns else float("nan")

    def delayed_jobs(self, threshold: float = 1.3) -> int:
        return sum(1 for s in self.job_slowdowns.values() if s > threshold)


def _build(mix: TraceMix, policy_name: str, with_faults: bool,
           config: ExperimentConfig) -> SharedCluster:
    sc = SharedCluster(cluster_spec=config.cluster, yarn_config=config.yarn,
                       hdfs_config=config.hdfs)
    for i, (wl, delay) in enumerate(mix.sample()):
        policy = ALMPolicy() if policy_name == "alm" else None
        sc.submit(wl, policy=policy, job_name=f"j{i}-{wl.name}", delay=delay)
    if with_faults:
        # Two node failures timed against distinct jobs' reduce phases
        # (mid-activity by construction, like operators see in traces).
        rng = np.random.default_rng(mix.seed + 1)
        victims = rng.choice(len(sc.jobs), size=min(2, len(sc.jobs)), replace=False)
        for v in np.atleast_1d(victims):
            fault = kill_node_at_progress(0.5, target="reducer")
            sc.jobs[int(v)].install(fault)
    return sc


def run_fleet(policy_name: str, mix: TraceMix,
              config: ExperimentConfig | None = None) -> FleetResult:
    """Run the fleet twice (clean/faulty) and report per-job slowdowns."""
    cfg = config or ExperimentConfig()
    clean = _build(mix, policy_name, with_faults=False, config=cfg).run_all()
    faulty_cluster = _build(mix, policy_name, with_faults=True, config=cfg)
    faulty = faulty_cluster.run_all()
    result = FleetResult(policy=policy_name)
    for c, f in zip(clean, faulty):
        if f.success and c.elapsed > 0:
            result.job_slowdowns[f.job_name] = f.elapsed / c.elapsed
        if not f.success:
            result.failed_jobs += 1
        result.total_reduce_failures += f.counters["failed_reduce_attempts"]
    result.makespan = max(r.end_time for r in faulty)
    return result


def motivation_fleet(
    num_jobs: int = 6,
    scale: float | None = None,
    seed: int = 7,
    config: ExperimentConfig | None = None,
) -> dict[str, FleetResult]:
    """YARN-vs-ALM fleet comparison under the same random failures.

    Input replication defaults to 3 here (the production norm, unlike
    the testbed's dfs.replication=2): with two concurrent node
    failures, 2-way replication can genuinely strand input blocks,
    which fails jobs under *any* recovery policy and would only add
    noise to the comparison.
    """
    scale = scale_from_env(1.0) if scale is None else scale
    if config is None:
        from repro.hdfs.hdfs import HdfsConfig

        config = ExperimentConfig(hdfs=HdfsConfig(replication=3))
    # Reducer counts are capped below the trace's >145 tail: a 145-way
    # job on 20 simulated workers is all queueing, no extra signal, and
    # dominates the harness wall time.
    mix = TraceMix(num_jobs=num_jobs, seed=seed,
                   mean_reducers=8.0, max_reducers=24).scaled(scale)
    return {
        "yarn": run_fleet("yarn", mix, config),
        "alm": run_fleet("alm", mix, config),
    }
