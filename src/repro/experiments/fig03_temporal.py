"""Fig. 3 — the temporal repetition of a ReduceTask failure.

Profile of a Wordcount job with one ReduceTask under stock YARN: a node
crash stalls the reduce progress; the scheduler only notices after the
liveness timeout; the recovered ReduceTask then stalls against the dead
node's MOFs and is declared failed a *second* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.faults import kill_node_at_progress
from repro.workloads import wordcount

__all__ = ["Fig03Result", "fig03_temporal_amplification"]


@dataclass
class Fig03Result:
    job_time: float
    crash_time: float
    detect_time: float
    recovery_start: float
    #: When the recovery attempt actually began processing (under SFM
    #: this is the fcm_start event — after MOF regeneration).
    effective_recovery_start: float = float("nan")
    repeat_failure_times: list[float] = field(default_factory=list)
    progress_series: list[tuple[float, float]] = field(default_factory=list)

    @property
    def detection_delay(self) -> float:
        """Paper: ~70 s (the NM liveness timeout)."""
        return self.detect_time - self.crash_time

    @property
    def second_failure_delay(self) -> float:
        """Paper: the recovered task is re-declared failed ~51 s later."""
        if not self.repeat_failure_times:
            return float("nan")
        return self.repeat_failure_times[0] - self.recovery_start


def fig03_temporal_amplification(
    crash_progress: float = 0.35,
    system: str = "yarn",
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> Fig03Result:
    scale = scale_from_env(1.0) if scale is None else scale
    wl = wordcount(10.0 * scale, num_reducers=1)
    fault = kill_node_at_progress(crash_progress, target="reducer")
    rt, res = run_benchmark_job(wl, system, faults=[fault], config=config,
                                job_name=f"fig03-{system}")
    trace = res.trace
    lost = trace.first("node_lost")
    detect_time = lost.time if lost else float("nan")
    starts = [e for e in trace.of_kind("attempt_start")
              if e.data["type"] == "reduce" and e.time > (fault.fired_at or 0)]
    recovery_start = starts[0].time if starts else float("nan")
    repeats = [e.time for e in trace.of_kind("attempt_failed")
               if e.data["type"] == "reduce" and e.time > detect_time]
    fcm = trace.first("fcm_start")
    return Fig03Result(
        job_time=res.elapsed,
        crash_time=fault.fired_at if fault.fired_at is not None else float("nan"),
        detect_time=detect_time,
        recovery_start=recovery_start,
        effective_recovery_start=fcm.time if fcm is not None else recovery_start,
        repeat_failure_times=repeats,
        progress_series=trace.series_values("reduce_progress"),
    )
