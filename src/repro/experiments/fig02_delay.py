"""Fig. 2 — delayed job execution from a single task failure.

A single MapTask failure has negligible impact; a single ReduceTask
failure degrades Terasort/Wordcount execution markedly, and more so the
later it strikes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentConfig,
    averaged_job_time,
    scale_from_env,
)
from repro.faults import kill_reduce_at_progress
from repro.faults.inject import TaskFault
from repro.mapreduce.tasks import TaskType
from repro.workloads import terasort, wordcount

__all__ = ["Fig02Row", "fig02_delayed_execution"]


@dataclass
class Fig02Row:
    workload: str
    failure: str
    progress: float
    job_time: float
    baseline: float

    @property
    def degradation_pct(self) -> float:
        return (self.job_time / self.baseline - 1.0) * 100.0


def fig02_delayed_execution(
    progress_points=(0.3, 0.6, 0.9),
    scale: float | None = None,
    config: ExperimentConfig | None = None,
    repeats: int = 3,
) -> list[Fig02Row]:
    """Each point is the mean of ``repeats`` seeded runs (§V-B: 'each
    of the results is the average of three test runs') — a single run's
    placement noise can exceed the effect of one short map failure."""
    scale = scale_from_env(1.0) if scale is None else scale
    workloads = [terasort(100.0 * scale), wordcount(10.0 * scale)]
    rows: list[Fig02Row] = []
    for wl in workloads:
        base = averaged_job_time(wl, "yarn", None, config, repeats,
                                 job_name=f"fig02-{wl.name}-base")
        for p in progress_points:
            t_map = averaged_job_time(
                wl, "yarn", lambda p=p: TaskFault(TaskType.MAP, 0, p),
                config, repeats, job_name=f"fig02-{wl.name}-map{p}")
            rows.append(Fig02Row(wl.name, "maptask", p, t_map, base))
            t_red = averaged_job_time(
                wl, "yarn", lambda p=p: kill_reduce_at_progress(p),
                config, repeats, job_name=f"fig02-{wl.name}-red{p}")
            rows.append(Fig02Row(wl.name, "reducetask", p, t_red, base))
    return rows
