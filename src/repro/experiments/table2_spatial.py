"""Table II — speculative recovery scheduling curbs infectious node
failures.

Terasort, 20 ReduceTasks; a MOF-holding node fails at 10/20/30% of the
reduce phase. Reported per (system, point): number of additional
ReduceTask failures and job execution time. Paper: YARN suffers 2/5/3
additional failures (429/533/516 s); SFM suffers 0 (435/449/445 s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.faults import kill_node_at_progress
from repro.workloads import terasort

__all__ = ["Table2Row", "table2_spatial_recovery"]


@dataclass
class Table2Row:
    system: str
    first_failure_point: float
    additional_failures: int
    execution_time: float


def table2_spatial_recovery(
    points=(0.1, 0.2, 0.3),
    systems=("yarn", "sfm"),
    num_reducers: int = 20,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Table2Row]:
    """The paper's pair by default; ``systems="all"`` (or any explicit
    roster) sweeps the whole policy registry through the same failure
    grid — the full-zoo comparison in one call."""
    if systems == "all":
        from repro.policies import policy_names

        systems = policy_names()
    scale = scale_from_env(1.0) if scale is None else scale
    wl = terasort(100.0 * scale, num_reducers=num_reducers)
    rows: list[Table2Row] = []
    for p in points:
        for system in systems:
            fault = kill_node_at_progress(p, target="map-only")
            _, res = run_benchmark_job(wl, system, faults=[fault], config=config,
                                       job_name=f"table2-{system}-{p}")
            rows.append(Table2Row(
                system=system.upper(),
                first_failure_point=p,
                additional_failures=res.counters["failed_reduce_attempts"],
                execution_time=res.elapsed,
            ))
    return rows
