"""Fig. 15 — benefits of enabling both ALG and SFM.

Late node failure in the reduce phase: SFM+ALG (ALM) recovers faster
than SFM alone because the reduce-stage logs on HDFS let the recovery
skip the already-reduced prefix (and its deserialisation). The paper
reports further 11.4/16.1/25.8% gains for Terasort/Wordcount/
Secondarysort, with Secondarysort gaining most (reduce-CPU heavy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.experiments.fig08_alg import PAPER_INPUTS
from repro.faults import kill_node_at_progress
from repro.workloads import secondarysort, terasort, wordcount

__all__ = ["Fig15Row", "fig15_sfm_plus_alg"]


@dataclass
class Fig15Row:
    workload: str
    system: str
    job_time: float
    recovery_time: float


def fig15_sfm_plus_alg(
    failure_progress: float = 0.8,
    systems=("sfm", "alm"),
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Fig15Row]:
    scale = scale_from_env(1.0) if scale is None else scale
    workloads = [
        terasort(PAPER_INPUTS["terasort"] * scale),
        wordcount(PAPER_INPUTS["wordcount"] * scale),
        secondarysort(PAPER_INPUTS["secondarysort"] * scale),
    ]
    rows: list[Fig15Row] = []
    for wl in workloads:
        for system in systems:
            fault = kill_node_at_progress(failure_progress, target="reducer")
            _, res = run_benchmark_job(wl, system, faults=[fault],
                                       config=config,
                                       job_name=f"fig15-{wl.name}-{system}")
            t0 = fault.fired_at if fault.fired_at is not None else res.end_time
            rows.append(Fig15Row(wl.name, system, res.elapsed,
                                 _failed_task_recovery_time(res, t0)))
    return rows


def _failed_task_recovery_time(res, fault_time: float) -> float:
    """Time from the failure until the *failed* ReduceTask re-commits
    (the paper's 'recovery process')."""
    killed = res.trace.first("attempt_killed_node_lost", type="reduce")
    if killed is None:
        return max(0.0, res.end_time - fault_time)
    task_name = killed.data["task"]
    commit = res.trace.last("reduce_commit", task=task_name)
    end = commit.time if commit is not None else res.end_time
    return max(0.0, end - fault_time)


def further_improvement(rows: list[Fig15Row]) -> dict[str, float]:
    """ALM's recovery-time gain over SFM-only, % per workload."""
    by_wl: dict[str, dict[str, float]] = {}
    for r in rows:
        by_wl.setdefault(r.workload, {})[r.system] = r.recovery_time
    return {
        wl: (1.0 - v["alm"] / v["sfm"]) * 100.0
        for wl, v in by_wl.items() if "alm" in v and "sfm" in v and v["sfm"] > 0
    }
