"""Fig. 11 — ALG's overhead on failure-free execution is negligible.

Terasort with input sizes 10..320 GB, YARN vs ALG, no faults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.workloads import terasort

__all__ = ["Fig11Row", "fig11_alg_overhead"]


@dataclass
class Fig11Row:
    input_gb: float
    system: str
    job_time: float


def fig11_alg_overhead(
    input_sizes_gb=(10.0, 20.0, 40.0, 80.0, 160.0, 320.0),
    systems=("yarn", "alg"),
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Fig11Row]:
    scale = scale_from_env(1.0) if scale is None else scale
    rows: list[Fig11Row] = []
    for gb in input_sizes_gb:
        wl = terasort(gb * scale)
        for system in systems:
            _, res = run_benchmark_job(wl, system, config=config,
                                       job_name=f"fig11-{system}-{gb}")
            rows.append(Fig11Row(gb, system, res.elapsed))
    return rows


def overhead_pct(rows: list[Fig11Row]) -> dict[float, float]:
    """ALG overhead versus YARN per input size (paper: ~0%)."""
    by_gb: dict[float, dict[str, float]] = {}
    for r in rows:
        by_gb.setdefault(r.input_gb, {})[r.system] = r.job_time
    return {
        gb: (v["alg"] / v["yarn"] - 1.0) * 100.0
        for gb, v in by_gb.items() if "alg" in v and "yarn" in v
    }
