"""Fig. 12 — ALG performance at different logging frequencies.

The paper observes ALG is insensitive to the frequency, and that more
frequent logging means less work per tick (fewer in-memory segments to
flush).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_benchmark_job, scale_from_env
from repro.workloads import terasort

__all__ = ["Fig12Row", "fig12_log_frequency"]


@dataclass
class Fig12Row:
    frequency: float
    job_time: float
    log_ticks: int


def fig12_log_frequency(
    frequencies=(2.0, 5.0, 10.0, 20.0, 40.0),
    input_gb: float = 100.0,
    scale: float | None = None,
    config: ExperimentConfig | None = None,
) -> list[Fig12Row]:
    scale = scale_from_env(1.0) if scale is None else scale
    wl = terasort(input_gb * scale)
    rows: list[Fig12Row] = []
    for freq in frequencies:
        rt, res = run_benchmark_job(
            wl, "alg", config=config, job_name=f"fig12-{freq}",
            policy_kwargs={"alg_frequency": freq})
        rows.append(Fig12Row(freq, res.elapsed, rt.policy.logger.ticks))
    return rows
