"""Synthetic job-mix generator modelled on production-trace statistics.

The paper motivates its work with Kavulya et al.'s analysis of a
production MapReduce cluster (CCGrid'10): the average job has 19
ReduceTasks, many have more than 145, and ~3% of jobs end failed or
cancelled with many more delayed. :class:`TraceMix` samples a fleet of
jobs with those coarse statistics so the motivating claim can be
measured end-to-end (see :mod:`repro.experiments.motivation`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.core import SimulationError
from repro.workloads.workload import Workload, secondarysort, terasort, wordcount

__all__ = ["TraceMix"]

_FAMILIES = (terasort, wordcount, secondarysort)


@dataclass(frozen=True)
class TraceMix:
    """Sampler for a fleet of jobs with trace-like shape statistics.

    - Input sizes: log-normal, median ``median_input_gb``.
    - Reducer counts: geometric-ish with mean ~``mean_reducers``
      (Kavulya: 19), capped at ``max_reducers`` (some jobs >145).
    - Job families: uniform over the paper's three benchmarks.
    - Inter-arrival times: exponential with mean ``mean_interarrival``.
    """

    num_jobs: int = 8
    median_input_gb: float = 8.0
    sigma_input: float = 0.8
    mean_reducers: float = 19.0
    max_reducers: int = 145
    mean_interarrival: float = 30.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise SimulationError("need at least one job")
        if self.median_input_gb <= 0 or self.mean_reducers < 1:
            raise SimulationError("bad mix parameters")

    def sample(self) -> list[tuple[Workload, float]]:
        """Return ``num_jobs`` (workload, submit_delay) pairs."""
        rng = np.random.default_rng(self.seed)
        jobs: list[tuple[Workload, float]] = []
        t = 0.0
        for i in range(self.num_jobs):
            family = _FAMILIES[int(rng.integers(len(_FAMILIES)))]
            size_gb = float(np.exp(rng.normal(np.log(self.median_input_gb),
                                              self.sigma_input)))
            size_gb = max(0.5, min(size_gb, 200.0))
            reducers = 1 + int(rng.geometric(1.0 / self.mean_reducers))
            reducers = min(reducers, self.max_reducers)
            wl = family(size_gb).with_reducers(reducers)
            # Keep the family's identity in the name but make it unique.
            jobs.append((wl, t))
            t += float(rng.exponential(self.mean_interarrival))
        return jobs

    def sample_with_policies(
        self, policies: "tuple[str, ...] | list[str] | None" = None,
    ) -> list[tuple[Workload, float, str]]:
        """``sample()`` plus a recovery-policy assignment per job.

        Jobs rotate through ``policies`` (default: every policy in
        :mod:`repro.policies`, so a newly-registered policy joins the
        fleet mix with no wiring) in sampling order — the assignment is
        a pure function of the mix seed and the roster, never of
        wall-clock or registry-iteration races.
        """
        if policies is None:
            from repro.policies import policy_names

            policies = policy_names()
        roster = tuple(policies)
        if not roster:
            raise SimulationError("empty policy roster")
        return [(wl, delay, roster[i % len(roster)])
                for i, (wl, delay) in enumerate(self.sample())]

    def scaled(self, scale: float) -> "TraceMix":
        from dataclasses import replace

        return replace(self, median_input_gb=self.median_input_gb * scale)
