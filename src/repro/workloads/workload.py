"""Workload descriptions driving the MapReduce cost model."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.node import GB
from repro.sim.core import SimulationError

__all__ = ["BENCHMARKS", "Workload", "secondarysort", "terasort", "wordcount"]


@dataclass(frozen=True)
class Workload:
    """Resource shape of one MapReduce program.

    CPU costs are seconds per MB of data through the respective
    function; selectivities are output-bytes per input-byte. Together
    with the cluster's device bandwidths they determine whether each
    phase is disk-, network- or CPU-bound.
    """

    name: str
    input_size: float
    num_reducers: int
    #: MOF bytes produced per input byte (combiner folded in).
    map_selectivity: float
    #: Seconds of map CPU per MB of input.
    map_cpu_per_mb: float
    #: Seconds of reduce CPU per MB of reduce input.
    reduce_cpu_per_mb: float
    #: HDFS output bytes per reduce-input byte.
    reduce_selectivity: float
    #: Seconds of CPU per MB merged (comparisons + (de)serialisation).
    merge_cpu_per_mb: float = 0.002
    #: Fraction of reduce CPU that is deserialisation (skippable when
    #: ALG logs let the recovering task resume a deserialised stream).
    deser_fraction: float = 0.3
    #: Relative spread of partition sizes across reducers (0 = uniform).
    partition_skew: float = 0.05

    def __post_init__(self) -> None:
        if self.input_size <= 0:
            raise SimulationError("input_size must be positive")
        if self.num_reducers < 1:
            raise SimulationError("need at least one reducer")
        for attr in ("map_selectivity", "map_cpu_per_mb", "reduce_cpu_per_mb",
                     "reduce_selectivity", "merge_cpu_per_mb"):
            if getattr(self, attr) < 0:
                raise SimulationError(f"{attr} must be >= 0")
        if not 0 <= self.deser_fraction <= 1:
            raise SimulationError("deser_fraction must be in [0, 1]")

    # -- derived quantities --------------------------------------------------
    @property
    def shuffle_bytes(self) -> float:
        """Total intermediate bytes crossing from maps to reduces."""
        return self.input_size * self.map_selectivity

    def partition_weights(self, rng: np.random.Generator) -> np.ndarray:
        """Per-reducer share of each MOF (sums to 1)."""
        if self.partition_skew <= 0:
            return np.full(self.num_reducers, 1.0 / self.num_reducers)
        w = rng.lognormal(mean=0.0, sigma=self.partition_skew, size=self.num_reducers)
        return w / w.sum()

    def with_input(self, input_size: float) -> "Workload":
        return replace(self, input_size=input_size)

    def with_reducers(self, num_reducers: int) -> "Workload":
        return replace(self, num_reducers=num_reducers)


def terasort(input_gb: float = 100.0, num_reducers: int = 20) -> Workload:
    """Identity sort: all input is shuffled and all of it is written back."""
    return Workload(
        name="terasort",
        input_size=input_gb * GB,
        num_reducers=num_reducers,
        map_selectivity=1.0,
        map_cpu_per_mb=0.05,
        reduce_cpu_per_mb=0.006,
        reduce_selectivity=1.0,
        merge_cpu_per_mb=0.004,
        deser_fraction=0.35,
    )


def wordcount(input_gb: float = 10.0, num_reducers: int = 1) -> Workload:
    """Tokenise-and-count: the combiner shrinks map output ~20x, and the
    paper runs it with a single long-running reducer (Figs. 3 & 10)."""
    return Workload(
        name="wordcount",
        input_size=input_gb * GB,
        num_reducers=num_reducers,
        map_selectivity=0.30,
        map_cpu_per_mb=0.15,
        reduce_cpu_per_mb=0.04,
        reduce_selectivity=0.30,
        merge_cpu_per_mb=0.005,
        deser_fraction=0.25,
    )


def secondarysort(input_gb: float = 10.0, num_reducers: int = 10) -> Workload:
    """Composite-key sort whose reduce function dominates runtime."""
    return Workload(
        name="secondarysort",
        input_size=input_gb * GB,
        num_reducers=num_reducers,
        map_selectivity=1.0,
        map_cpu_per_mb=0.02,
        reduce_cpu_per_mb=0.12,
        reduce_selectivity=0.5,
        merge_cpu_per_mb=0.004,
        deser_fraction=0.55,
    )


#: The paper's benchmark suite with its §V input sizes.
BENCHMARKS = {
    "terasort": terasort,
    "wordcount": wordcount,
    "secondarysort": secondarysort,
}
