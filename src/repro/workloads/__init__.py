"""Parametric models of the paper's three benchmarks.

The evaluation (§V-A) uses Terasort, Wordcount and Secondarysort. For
the phenomena under study only their coarse resource shapes matter:

- **Terasort** — shuffle-heavy identity job: map output ≈ map input,
  cheap map/reduce functions, many reducers (Table II runs 20).
- **Wordcount** — combiner collapses map output dramatically, a single
  (or few) long-running reducer(s), CPU-heavier map (tokenising).
- **Secondarysort** — full shuffle volume with an expensive reduce
  function (composite-key grouping), so reduce-stage progress dominates
  — which is why ALG's reduce-stage logs help it most (Fig. 15).
"""

from repro.workloads.workload import (
    Workload,
    secondarysort,
    terasort,
    wordcount,
    BENCHMARKS,
)

__all__ = ["BENCHMARKS", "Workload", "secondarysort", "terasort", "wordcount"]
